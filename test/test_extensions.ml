(* Tests for the extensions beyond the paper's minimum: record sources
   and streaming co-simulation, the multi-core system, the L2 hierarchy,
   histograms, and the textual assembler. *)

module Record = Resim_trace.Record

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let i64 = Alcotest.int64

(* --- Source ----------------------------------------------------------- *)

let sample n =
  Array.init n (fun i ->
      { Record.pc = i; wrong_path = false; dest = 1; src1 = 2; src2 = 0;
        payload = Record.Other { op_class = Record.Alu } })

let test_source_array () =
  let source = Resim_core.Source.of_array (sample 5) in
  check bool "index 0" true (Resim_core.Source.at source 0 <> None);
  check bool "index 4" true (Resim_core.Source.at source 4 <> None);
  check bool "index 5 ends" true (Resim_core.Source.at source 5 = None);
  Resim_core.Source.release_below source 3;
  check bool "array sources never reclaim" true
    (Resim_core.Source.at source 0 <> None)

let test_source_pull () =
  let records = sample 100 in
  let next = ref 0 in
  let pull () =
    if !next >= Array.length records then None
    else begin
      let record = records.(!next) in
      incr next;
      Some record
    end
  in
  let source = Resim_core.Source.of_pull pull in
  (* Lazy: nothing pulled yet. *)
  check int "lazy" 0 !next;
  check bool "at 10 pulls through" true
    (Resim_core.Source.at source 10 <> None);
  check int "pulled exactly 11" 11 !next;
  (* Random access within the window works. *)
  check bool "re-read 3" true
    (match Resim_core.Source.at source 3 with
     | Some r -> r.Record.pc = 3
     | None -> false);
  check bool "end detected" true (Resim_core.Source.at source 100 = None)

let test_source_reclaim () =
  let next = ref 0 in
  let pull () =
    let record = (sample 1).(0) in
    incr next;
    if !next > 5000 then None else Some { record with Record.pc = !next }
  in
  let source = Resim_core.Source.of_pull pull in
  for i = 0 to 4999 do
    ignore (Resim_core.Source.at source i);
    Resim_core.Source.release_below source i
  done;
  check bool "window stays bounded" true
    (Resim_core.Source.buffered source < 3000);
  Alcotest.check_raises "reclaimed index rejected"
    (Invalid_argument "Source.at: index already reclaimed") (fun () ->
      ignore (Resim_core.Source.at source 0))

(* --- Stream + Cosim ---------------------------------------------------- *)

let gzip_program scale =
  let gzip = Resim_workloads.Workload.find "gzip" in
  Resim_workloads.Workload.program_of gzip ~scale ()

let test_stream_matches_batch_generator () =
  let program = gzip_program 1024 in
  let batch = Resim_tracegen.Generator.run program in
  let stream = Resim_tracegen.Stream.create program in
  let rec drain acc =
    match Resim_tracegen.Stream.pull stream with
    | Some record -> drain (record :: acc)
    | None -> Array.of_list (List.rev acc)
  in
  let streamed = drain [] in
  check int "same length" (Array.length batch.records)
    (Array.length streamed);
  check bool "identical records" true
    (Array.for_all2 Record.equal batch.records streamed);
  check int "same correct-path count" batch.correct_path
    (Resim_tracegen.Stream.correct_path stream);
  check int "same mispredictions" batch.mispredicted_branches
    (Resim_tracegen.Stream.mispredicted_branches stream);
  check bool "stream finished" true (Resim_tracegen.Stream.finished stream)

let test_cosim_equals_batch () =
  let program = gzip_program 2048 in
  let cosim = Resim_core.Cosim.run program in
  let batch = Resim_core.Resim.simulate_program program in
  check i64 "same cycles"
    (Resim_core.Stats.get Resim_core.Stats.major_cycles batch.stats)
    (Resim_core.Stats.get Resim_core.Stats.major_cycles cosim.stats);
  check i64 "same committed"
    (Resim_core.Stats.get Resim_core.Stats.committed batch.stats)
    (Resim_core.Stats.get Resim_core.Stats.committed cosim.stats);
  check i64 "same squashes"
    (Resim_core.Stats.get Resim_core.Stats.mispredictions batch.stats)
    (Resim_core.Stats.get Resim_core.Stats.mispredictions cosim.stats)

let test_cosim_memory_bounded () =
  let program = gzip_program 4096 in
  let cosim = Resim_core.Cosim.run program in
  (* The whole trace is >100k records; the co-simulation window must
     stay orders of magnitude below that. *)
  check bool "bounded buffering" true (cosim.peak_buffered_records < 5_000);
  check bool "work was done" true (cosim.correct_path > 50_000)

(* --- Multicore ---------------------------------------------------------- *)

let spec_of name scale =
  let workload = Resim_workloads.Workload.find name in
  let program = Resim_workloads.Workload.program_of workload ~scale () in
  { Resim_multicore.System.name;
    feed = Resim_multicore.System.Records (Resim_tracegen.Generator.records program);
    config = Resim_core.Config.reference }

let test_multicore_lockstep_equals_standalone () =
  let specs = [ spec_of "gzip" 1024; spec_of "parser" 1024 ] in
  let system = Resim_multicore.System.create specs in
  check bool "system drains" true
    (Resim_multicore.System.run system = `Finished);
  List.iter2
    (fun (spec : Resim_multicore.System.core_spec)
         (result : Resim_multicore.System.core_result) ->
      let standalone =
        match spec.feed with
        | Resim_multicore.System.Records records ->
            Resim_core.Engine.simulate ~config:spec.config records
        | Resim_multicore.System.Stream _ -> assert false
      in
      check i64
        (spec.name ^ " cycles match standalone")
        (Resim_core.Stats.get Resim_core.Stats.major_cycles standalone)
        (Resim_core.Stats.get Resim_core.Stats.major_cycles result.stats))
    specs
    (Resim_multicore.System.results system)

let test_multicore_clock_is_slowest_core () =
  let specs = [ spec_of "gzip" 1024; spec_of "vortex" 256 ] in
  let system = Resim_multicore.System.create specs in
  check bool "system drains" true
    (Resim_multicore.System.run system = `Finished);
  let results = Resim_multicore.System.results system in
  let slowest =
    List.fold_left
      (fun acc (r : Resim_multicore.System.core_result) ->
        max acc r.finished_at)
      0L results
  in
  check i64 "clock = slowest drain" slowest
    (Resim_multicore.System.elapsed_cycles system)

let test_multicore_validation () =
  Alcotest.check_raises "empty system"
    (Invalid_argument "System.create: no cores") (fun () ->
      ignore (Resim_multicore.System.create []));
  let mixed =
    [ spec_of "gzip" 256;
      { (spec_of "parser" 256) with
        config =
          { Resim_core.Config.reference with
            organization = Resim_core.Config.Improved } } ]
  in
  Alcotest.check_raises "mixed organizations"
    (Invalid_argument
       "System.create: co-resident cores must share organization and width")
    (fun () -> ignore (Resim_multicore.System.create mixed))

let test_multicore_aggregate () =
  let specs = [ spec_of "gzip" 512; spec_of "vpr" 1 ] in
  let system = Resim_multicore.System.create specs in
  check bool "system drains" true
    (Resim_multicore.System.run system = `Finished);
  let sum =
    List.fold_left
      (fun acc (r : Resim_multicore.System.core_result) ->
        Int64.add acc (Resim_core.Stats.get Resim_core.Stats.committed r.stats))
      0L
      (Resim_multicore.System.results system)
  in
  check i64 "aggregate = sum of cores" sum
    (Resim_multicore.System.aggregate_committed system);
  check bool "aggregate MIPS positive" true
    (Resim_multicore.System.aggregate_mips system
       ~device:Resim_fpga.Device.virtex5_xc5vlx50t
    > 0.0)

let test_multicore_truncation_reported () =
  let specs = [ spec_of "gzip" 1024; spec_of "vpr" 1 ] in
  let system = Resim_multicore.System.create specs in
  check bool "budget exhausted" true
    (Resim_multicore.System.run ~max_cycles:10L system = `Truncated);
  check i64 "clock stops at the budget" 10L
    (Resim_multicore.System.elapsed_cycles system);
  List.iter
    (fun (r : Resim_multicore.System.core_result) ->
      check bool (r.core ^ " reported undrained") false r.drained;
      check i64 (r.core ^ " finished_at is the truncation clock") 10L
        r.finished_at)
    (Resim_multicore.System.results system);
  (* Resuming past the budget eventually drains and flips the status. *)
  check bool "resume finishes" true
    (Resim_multicore.System.run system = `Finished);
  List.iter
    (fun (r : Resim_multicore.System.core_result) ->
      check bool (r.core ^ " drained after resume") true r.drained)
    (Resim_multicore.System.results system)

(* --- Hierarchy ----------------------------------------------------------- *)

let test_hierarchy_l2_absorbs_misses () =
  let l2 =
    Resim_cache.Cache.create
      ~timing:{ Resim_cache.Cache.hit_latency = 6; miss_latency = 40 }
      (Resim_cache.Cache.Set_associative
         { size_bytes = 256 * 1024; associativity = 8; block_bytes = 64 })
  in
  let h =
    Resim_cache.Hierarchy.create Resim_cache.Cache.l1_32k_8way_64b
      ~l2:(Some l2)
  in
  (* Cold: L1 miss + L2 miss. *)
  let cold = Resim_cache.Hierarchy.access h ~addr:0x1000 ~write:false in
  check int "cold miss via L2" (1 + 6 + 40) cold;
  (* Warm L1. *)
  check int "L1 hit" 1 (Resim_cache.Hierarchy.access h ~addr:0x1000 ~write:false);
  (* Evict from L1 by sweeping 64 KB, then re-access: L1 miss, L2 hit. *)
  for block = 1 to 1024 do
    ignore (Resim_cache.Hierarchy.access h ~addr:(0x1000 + (block * 64)) ~write:false)
  done;
  let l2_hit = Resim_cache.Hierarchy.access h ~addr:0x1000 ~write:false in
  check int "L1 miss, L2 hit" (1 + 6) l2_hit

let test_hierarchy_without_l2 () =
  let h =
    Resim_cache.Hierarchy.create Resim_cache.Cache.l1_32k_8way_64b ~l2:None
  in
  check int "flat miss" 19
    (Resim_cache.Hierarchy.access h ~addr:0x40 ~write:false);
  check int "flat hit" 1 (Resim_cache.Hierarchy.access h ~addr:0x40 ~write:false)

let test_engine_l2_speeds_up_thrashing_loads () =
  let loads =
    Array.init 128 (fun i ->
        { Record.pc = i; wrong_path = false; dest = 1 + (i mod 8);
          src1 = 29; src2 = 0;
          payload =
            Record.Memory { is_load = true; address = (i mod 32) * 8192 } })
  in
  let flat =
    { Resim_core.Config.reference with
      dcache = Resim_cache.Cache.l1_32k_8way_64b }
  in
  let with_l2 =
    { flat with
      l2cache =
        Some
          (Resim_cache.Cache.Set_associative
             { size_bytes = 512 * 1024; associativity = 8; block_bytes = 64 });
      l2_timing = { Resim_cache.Cache.hit_latency = 6; miss_latency = 40 } }
  in
  let cycles config =
    Resim_core.Stats.get Resim_core.Stats.major_cycles
      (Resim_core.Engine.simulate ~config loads)
  in
  (* The access set (32 blocks spread over 256 KB) conflicts in the
     32 KB L1 but lives comfortably in the L2, so the L2 must help
     compared against a flat L1 whose misses cost the full memory
     latency... with the flat L1's 18-cycle miss vs the L2 hit of 6. *)
  check bool "L2 reduces cycles" true (cycles with_l2 < cycles flat)

(* --- Histogram ------------------------------------------------------------ *)

let test_histogram_basics () =
  let h = Resim_core.Histogram.create ~bins:5 in
  List.iter (Resim_core.Histogram.observe h) [ 0; 1; 1; 2; 9; -3 ];
  check (Alcotest.int64) "bin 1" 2L (Resim_core.Histogram.count h 1);
  check (Alcotest.int64) "clamp high" 1L (Resim_core.Histogram.count h 4);
  check (Alcotest.int64) "clamp low" 2L (Resim_core.Histogram.count h 0);
  check (Alcotest.int64) "total" 6L (Resim_core.Histogram.total h);
  check bool "fraction" true
    (abs_float (Resim_core.Histogram.fraction_at h 1 -. (2.0 /. 6.0)) < 1e-9)

let test_engine_histograms_populated () =
  let records = sample 400 in
  let records =
    Array.mapi
      (fun i (r : Record.t) -> { r with Record.dest = 1 + (i mod 28) })
      records
  in
  let engine = Resim_core.Engine.create records in
  ignore (Resim_core.Engine.run engine);
  let stats = Resim_core.Engine.stats engine in
  let commit = Resim_core.Stats.commit_width_histogram stats in
  check (Alcotest.int64) "one observation per cycle"
    (Resim_core.Stats.get Resim_core.Stats.major_cycles stats)
    (Resim_core.Histogram.total commit);
  (* Independent work on a 4-wide machine commits 4-wide in steady
     state. *)
  check bool "wide commits dominate" true
    (Resim_core.Histogram.fraction_at commit 4 > 0.5)

(* --- Parser ----------------------------------------------------------------- *)

let test_parser_roundtrip_semantics () =
  let source =
    "# sum 1..n\n\
     .entry main\n\
     .word 0x200 10\n\
     main:\n\
     \  lw t0, 0x200(zero)\n\
     \  li t1, 0\n\
     loop:\n\
     \  add t1, t1, t0\n\
     \  addi t0, t0, -1\n\
     \  bne t0, zero, loop\n\
     \  sw t1, 0x204(zero)\n\
     \  halt\n"
  in
  let program = Resim_isa.Parser.parse source in
  let machine = Resim_isa.Machine.create ~program () in
  ignore (Resim_isa.Interpreter.run machine program);
  check int "sum 1..10" 55 (Resim_isa.Machine.read_word machine 0x204)

let test_parser_registers () =
  check bool "alias" true
    (Resim_isa.Parser.register_of_string "sp" = Some Resim_isa.Reg.sp);
  check bool "numeric" true
    (Resim_isa.Parser.register_of_string "r17" = Some (Resim_isa.Reg.r 17));
  check bool "bad name" true (Resim_isa.Parser.register_of_string "x9" = None);
  check bool "out of range" true
    (Resim_isa.Parser.register_of_string "r32" = None)

let test_parser_errors () =
  let expect_error source =
    match Resim_isa.Parser.parse source with
    | exception Resim_isa.Parser.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected a parse error"
  in
  expect_error "  addq t0, t1, t2\n";
  expect_error "  add t0, t1\n";
  expect_error "  lw t0, t1\n";
  expect_error "  li t0, notanumber\n";
  expect_error "  add t0, t1, x99\n";
  (* line numbers are reported *)
  match Resim_isa.Parser.parse "nop\nnop\nbogus t0\n" with
  | exception Resim_isa.Parser.Parse_error { line; _ } ->
      check int "line number" 3 line
  | _ -> Alcotest.fail "expected a parse error"

let test_parser_mixed_labels_and_comments () =
  let program =
    Resim_isa.Parser.parse
      "start: nop ; trailing comment\n\
       a: b: halt\n"
  in
  check int "two instructions" 2 (Resim_isa.Program.length program);
  check int "start" 0 (Resim_isa.Program.resolve program "start");
  check int "a" 1 (Resim_isa.Program.resolve program "a");
  check int "b" 1 (Resim_isa.Program.resolve program "b")

let test_parser_matches_edsl () =
  (* The same program through the text parser and the EDSL produces the
     same timing. *)
  let text =
    "main:\n\
     \  li t0, 0\n\
     loop:\n\
     \  addi t0, t0, 1\n\
     \  slti t1, t0, 64\n\
     \  bne t1, zero, loop\n\
     \  halt\n"
  in
  let parsed = Resim_isa.Parser.parse text in
  let edsl =
    Resim_isa.Asm.(
      assemble
        [ label "main"; li t0 0; label "loop"; addi t0 t0 1;
          slti t1 t0 64; bne t1 Resim_isa.Reg.zero "loop"; halt ])
  in
  let cycles program =
    Resim_core.Stats.get Resim_core.Stats.major_cycles
      (Resim_core.Resim.simulate_program program).stats
  in
  check i64 "identical timing" (cycles edsl) (cycles parsed)

(* --- Disassembler ------------------------------------------------------ *)

let test_disasm_roundtrip_example () =
  let program =
    Resim_isa.Asm.(
      assemble ~entry:"main" ~data:[ (64, 9) ]
        [ label "sub";
          add v0 a0 a0;
          jr Resim_isa.Reg.ra;
          label "main";
          lw a0 64 Resim_isa.Reg.zero;
          jal "sub";
          sw v0 68 Resim_isa.Reg.zero;
          li t0 0;
          label "spin";
          addi t0 t0 1;
          slti t1 t0 4;
          bne t1 Resim_isa.Reg.zero "spin";
          halt ])
  in
  let text = Resim_isa.Disasm.program program in
  let reparsed = Resim_isa.Parser.parse text in
  check int "entry preserved" program.Resim_isa.Program.entry
    reparsed.Resim_isa.Program.entry;
  check bool "data preserved" true
    (reparsed.Resim_isa.Program.data = program.Resim_isa.Program.data);
  check bool "instructions identical" true
    (reparsed.Resim_isa.Program.code = program.Resim_isa.Program.code);
  (* And it still computes the same thing. *)
  let run program =
    let machine = Resim_isa.Machine.create ~program () in
    ignore (Resim_isa.Interpreter.run machine program);
    Resim_isa.Machine.read_word machine 68
  in
  check int "same result" (run program) (run reparsed)

(* Random straight-line-plus-loops program generator for the round-trip
   property. *)
let random_program_gen =
  let open QCheck.Gen in
  let instruction i =
    frequency
      [ (6, map2 (fun op regs ->
                let r k = Resim_isa.Reg.r (1 + ((regs lsr k) land 15)) in
                let build =
                  match op mod 6 with
                  | 0 -> Resim_isa.Asm.add | 1 -> Resim_isa.Asm.sub
                  | 2 -> Resim_isa.Asm.xor | 3 -> Resim_isa.Asm.mul
                  | 4 -> Resim_isa.Asm.slt | _ -> Resim_isa.Asm.or_
                in
                build (r 0) (r 4) (r 8))
             small_nat (int_bound 4095));
        (2, map2 (fun regs disp ->
                let r k = Resim_isa.Reg.r (1 + ((regs lsr k) land 15)) in
                if regs land 1 = 0 then Resim_isa.Asm.lw (r 0) disp (r 4)
                else Resim_isa.Asm.sw (r 0) disp (r 4))
             (int_bound 4095) (int_range (-64) 64));
        (1, map (fun regs ->
                let r k = Resim_isa.Reg.r (1 + ((regs lsr k) land 15)) in
                (* Backward conditional branch to a label planted at the
                   start; always resolvable. *)
                Resim_isa.Asm.beq (r 0) (r 4) "top")
             (int_bound 4095)) ]
    |> fun g -> ignore i; g
  in
  int_range 2 40 >>= fun n ->
  flatten_l (List.init n (fun i -> instruction i)) >>= fun body ->
  return
    (Resim_isa.Asm.assemble
       ((Resim_isa.Asm.label "top" :: body) @ [ Resim_isa.Asm.halt ]))

let disasm_roundtrip_property =
  QCheck.Test.make ~name:"disassemble/parse round-trips random programs"
    ~count:100
    (QCheck.make random_program_gen)
    (fun program ->
      let reparsed =
        Resim_isa.Parser.parse (Resim_isa.Disasm.program program)
      in
      reparsed.Resim_isa.Program.code = program.Resim_isa.Program.code
      && reparsed.Resim_isa.Program.entry = program.Resim_isa.Program.entry)

let suite =
  [ ("ext:source",
     [ Alcotest.test_case "array" `Quick test_source_array;
       Alcotest.test_case "pull" `Quick test_source_pull;
       Alcotest.test_case "reclaim" `Quick test_source_reclaim ]);
    ("ext:cosim",
     [ Alcotest.test_case "stream = batch generator" `Quick
         test_stream_matches_batch_generator;
       Alcotest.test_case "cosim = batch pipeline" `Quick
         test_cosim_equals_batch;
       Alcotest.test_case "bounded memory" `Slow test_cosim_memory_bounded ]);
    ("ext:multicore",
     [ Alcotest.test_case "lockstep = standalone" `Quick
         test_multicore_lockstep_equals_standalone;
       Alcotest.test_case "clock" `Quick test_multicore_clock_is_slowest_core;
       Alcotest.test_case "validation" `Quick test_multicore_validation;
       Alcotest.test_case "aggregates" `Quick test_multicore_aggregate;
       Alcotest.test_case "truncation reported" `Quick
         test_multicore_truncation_reported ]);
    ("ext:hierarchy",
     [ Alcotest.test_case "L2 absorbs misses" `Quick
         test_hierarchy_l2_absorbs_misses;
       Alcotest.test_case "flat L1" `Quick test_hierarchy_without_l2;
       Alcotest.test_case "engine with L2" `Quick
         test_engine_l2_speeds_up_thrashing_loads ]);
    ("ext:histogram",
     [ Alcotest.test_case "basics" `Quick test_histogram_basics;
       Alcotest.test_case "engine populates" `Quick
         test_engine_histograms_populated ]);
    ("ext:disasm",
     [ Alcotest.test_case "example round-trip" `Quick
         test_disasm_roundtrip_example;
       QCheck_alcotest.to_alcotest disasm_roundtrip_property ]);
    ("ext:parser",
     [ Alcotest.test_case "semantics" `Quick test_parser_roundtrip_semantics;
       Alcotest.test_case "registers" `Quick test_parser_registers;
       Alcotest.test_case "errors" `Quick test_parser_errors;
       Alcotest.test_case "labels/comments" `Quick
         test_parser_mixed_labels_and_comments;
       Alcotest.test_case "parser = EDSL" `Quick test_parser_matches_edsl ])
  ]
