(* Tests for the engine-specialization layer (DESIGN.md §14): staged
   variants must be bit-identical to the generic engine — same cycles,
   same full statistics dump, same observer event stream — on the
   kernel grid, on random synthetic traces, and through checkpoint
   resume; plus the Auto/Always/Never selection policy itself. *)

open Resim_core
module Spec = Resim_spec.Spec
module Synthetic = Resim_tracegen.Synthetic

let check = Alcotest.check
let bool = Alcotest.bool
let string = Alcotest.string

let stats_dump stats = Format.asprintf "%a" Stats.pp stats

(* ------------------------------------------------------------------- *)
(* Engine runs with an event-stream signature: every observer event is
   folded into a compact string, so stream equality is equality of the
   whole pipetrace (order included), not just of final counters. *)

let attach_signature engine buffer =
  Engine.set_observer engine (fun event ->
      Buffer.add_string buffer
        (match event with
        | Engine.Ev_fetch _ -> "F"
        | Engine.Ev_dispatch e -> Printf.sprintf "D%d" e.Entry.id
        | Engine.Ev_issue e -> Printf.sprintf "I%d" e.Entry.id
        | Engine.Ev_complete e -> Printf.sprintf "C%d" e.Entry.id
        | Engine.Ev_commit e -> Printf.sprintf "R%d" e.Entry.id
        | Engine.Ev_squash e -> Printf.sprintf "Q%d" e.Entry.id
        | Engine.Ev_flush_frontend -> "X"
        | Engine.Ev_stall reason ->
            "s" ^ Engine.stall_reason_name reason);
      Buffer.add_char buffer ';')

type run = { stats : Stats.t; events : string; variant : string option }

let run_engine ~mode ~observe config records =
  let engine = Engine.create ~config records in
  let buffer = Buffer.create 4096 in
  if observe then attach_signature engine buffer;
  ignore (Spec.install ~mode engine : bool);
  let stats = Engine.run engine in
  { stats;
    events = Buffer.contents buffer;
    variant = Engine.variant engine }

let assert_staged_identical ~name config records =
  (* Generic vs staged, same scheduler, with the observer attached:
     cycles, full stats and the event stream must match exactly. *)
  let generic = run_engine ~mode:Spec.Never ~observe:true config records in
  let staged = run_engine ~mode:Spec.Auto ~observe:true config records in
  check bool (name ^ ": a variant installed") true (staged.variant <> None);
  check string
    (name ^ ": full stats dump")
    (stats_dump generic.stats) (stats_dump staged.stats);
  check string (name ^ ": event stream") generic.events staged.events

(* ------------------------------------------------------------------- *)
(* Three-way kernel differential: five kernels x the three
   organizations x both schedulers, each point proving Scan-generic,
   Event-generic and the staged variant agree on everything. *)

let kernel_records =
  lazy
    (List.map
       (fun kernel ->
         let name = Resim_workloads.Workload.name_of kernel in
         let program = Resim_workloads.Workload.program_of kernel () in
         (name, Resim_tracegen.Generator.records program))
       Resim_workloads.Workload.all)

let organizations =
  [ Config.Simple; Config.Improved; Config.Optimized ]

let schedulers = [ Config.Scan; Config.Event ]

let test_kernel_differential () =
  List.iter
    (fun (kernel, records) ->
      List.iter
        (fun organization ->
          (* Reference window at width 4: on the registry grid for
             every organization. *)
          let base =
            { Config.reference with Config.organization }
          in
          let dumps =
            List.map
              (fun scheduler ->
                let config = { base with Config.scheduler } in
                let name =
                  Printf.sprintf "%s/%s/%s" kernel
                    (Config.organization_name organization)
                    (Config.scheduler_name scheduler)
                in
                assert_staged_identical ~name config records;
                let staged =
                  run_engine ~mode:Spec.Auto ~observe:false config records
                in
                stats_dump staged.stats)
              schedulers
          in
          (* And the third leg: the two schedulers (staged) agree with
             each other, so all three engines pin the same timing. *)
          match dumps with
          | [ scan; event ] ->
              check string
                (Printf.sprintf "%s/%s: scan vs event (staged)" kernel
                   (Config.organization_name organization))
                scan event
          | _ -> assert false)
        organizations)
    (Lazy.force kernel_records)

(* ------------------------------------------------------------------- *)
(* Selection policy.                                                    *)

let exotic_config =
  (* Off every grid point: a ROB size the registry does not carry. *)
  { Config.reference with Config.rob_entries = 24 }

let test_auto_selection () =
  (match Spec.select Config.reference with
  | Some (module V : Spec.VARIANT) ->
      check bool "reference variant matches" true
        (V.matches Config.reference);
      check bool "reference maps to the optimized-event-w4 point" true
        (V.name = "optimized-event-w4-rob16-lsq8-rp2wp1")
  | None -> Alcotest.fail "reference configuration must be on the grid");
  check bool "exotic config is off the grid" true
    (match Spec.select exotic_config with None -> true | Some _ -> false);
  (* Every registry variant matches the configuration it was frozen
     from — or at least claims a distinct name. *)
  check bool "registry names are distinct" true
    (let names = List.sort_uniq compare Spec.variant_names in
     List.length names = List.length Spec.variant_names)

let test_install_modes () =
  let records = snd (List.hd (Lazy.force kernel_records)) in
  let engine = Engine.create ~config:Config.reference records in
  check bool "Never leaves the generic engine" false
    (Spec.install ~mode:Spec.Never engine);
  check bool "not specialized after Never" false
    (Engine.is_specialized engine);
  check bool "Auto installs on the grid" true
    (Spec.install ~mode:Spec.Auto engine);
  check bool "specialized after Auto" true (Engine.is_specialized engine);
  check bool "variant is reported" true (Engine.variant engine <> None);
  (* Auto off-grid: fall back to generic, not an error. *)
  let exotic = Engine.create ~config:exotic_config records in
  check bool "Auto misses off the grid" false
    (Spec.install ~mode:Spec.Auto exotic);
  check bool "off-grid Auto stays generic" false
    (Engine.is_specialized exotic)

let test_always_fallback_is_identical () =
  (* Always on an exotic configuration builds a one-off variant at run
     time; it must remain bit-identical to the generic engine. *)
  let records = snd (List.hd (Lazy.force kernel_records)) in
  List.iter
    (fun scheduler ->
      let config = { exotic_config with Config.scheduler } in
      let generic =
        run_engine ~mode:Spec.Never ~observe:true config records
      in
      let engine = Engine.create ~config records in
      let buffer = Buffer.create 4096 in
      attach_signature engine buffer;
      check bool "Always installs off-grid" true
        (Spec.install ~mode:Spec.Always engine);
      let stats = Engine.run engine in
      check string
        (Config.scheduler_name scheduler ^ ": fallback stats")
        (stats_dump generic.stats) (stats_dump stats);
      check string
        (Config.scheduler_name scheduler ^ ": fallback event stream")
        generic.events (Buffer.contents buffer))
    schedulers

(* ------------------------------------------------------------------- *)
(* Checkpoint resume: a budget-truncated specialized run must hand the
   generic replay a checkpoint it accepts, and the resumed statistics
   must equal an uninterrupted run's. *)

let test_checkpoint_resume_under_specialization () =
  let records = snd (List.hd (Lazy.force kernel_records)) in
  let config = Config.reference in
  match
    Resim.simulate_robust ~config ~max_cycles:1000L
      ~instrument:(Spec.instrument Spec.Auto) records
  with
  | Error _ -> Alcotest.fail "bounded specialized run failed"
  | Ok robust -> (
      match robust.Resim.resume with
      | None -> Alcotest.fail "expected a resume checkpoint"
      | Some checkpoint -> (
          match Resim.resume_trace ~config ~checkpoint records with
          | Error message -> Alcotest.fail message
          | Ok outcome ->
              let full = Engine.simulate ~config records in
              check string "resumed run matches uninterrupted"
                (stats_dump full) (stats_dump outcome.Resim.stats)))

(* ------------------------------------------------------------------- *)
(* Random-trace differential across the registry grid.                  *)

let grid_configs =
  (* One configuration per registry width, every organization where the
     port constraint allows it, cycled through both schedulers by the
     property itself. *)
  let point ~width ~alu ~rp ~wp organization =
    { Config.reference with
      Config.organization;
      width;
      ifq_entries = width;
      decouple_entries = width;
      alu_count = alu;
      mem_read_ports = rp;
      mem_write_ports = wp }
  in
  [| point ~width:2 ~alu:2 ~rp:1 ~wp:1 Config.Simple;
     point ~width:2 ~alu:2 ~rp:1 ~wp:1 Config.Improved;
     point ~width:4 ~alu:4 ~rp:2 ~wp:1 Config.Simple;
     point ~width:4 ~alu:4 ~rp:2 ~wp:1 Config.Improved;
     point ~width:4 ~alu:4 ~rp:2 ~wp:1 Config.Optimized;
     point ~width:8 ~alu:8 ~rp:4 ~wp:2 Config.Simple;
     point ~width:8 ~alu:8 ~rp:4 ~wp:2 Config.Improved;
     point ~width:8 ~alu:8 ~rp:4 ~wp:2 Config.Optimized |]

let staged_matches_generic =
  QCheck.Test.make
    ~name:"staged variants are bit-identical on random traces" ~count:80
    QCheck.(
      pair (int_bound 100_000)
        (pair (int_bound (Array.length grid_configs - 1))
           (pair (int_range 150 400) bool)))
    (fun (seed, (config_index, (instructions, use_event))) ->
      let config =
        { grid_configs.(config_index) with
          Config.scheduler =
            (if use_event then Config.Event else Config.Scan) }
      in
      let profile =
        { (Synthetic.balanced ~name:"spec-diff" ~instructions) with
          Synthetic.dependency_density = 0.5;
          mispredict_rate = 0.08 }
      in
      let records = Synthetic.generate ~seed profile in
      let generic =
        run_engine ~mode:Spec.Never ~observe:true config records
      in
      let staged =
        run_engine ~mode:Spec.Auto ~observe:true config records
      in
      staged.variant <> None
      && String.equal (stats_dump generic.stats) (stats_dump staged.stats)
      && String.equal generic.events staged.events)

(* ------------------------------------------------------------------- *)

let suite =
  [ ("spec:policy",
     [ Alcotest.test_case "auto selection" `Quick test_auto_selection;
       Alcotest.test_case "install modes" `Quick test_install_modes;
       Alcotest.test_case "Always fallback is identical" `Quick
         test_always_fallback_is_identical;
       Alcotest.test_case "checkpoint resume under specialization" `Quick
         test_checkpoint_resume_under_specialization ]);
    ("spec:differential",
     [ Alcotest.test_case "kernels x organizations x schedulers" `Slow
         test_kernel_differential;
       QCheck_alcotest.to_alcotest staged_matches_generic ]) ]
