(* Tests for the sampled-simulation layer (DESIGN.md §13) and the
   hardening satellites that shipped with it: the differential suite
   asserting the sampled IPC confidence interval covers the full-run
   IPC across the kernel x organization x scheduler grid, determinism
   for a fixed seed, budget composition, the structured RSM-K
   checkpoint parse errors, the sweep timed-region pin (host_mips must
   exclude trace generation), the shared JSON escape, and the CLI exit
   code contract. *)

module Config = Resim_core.Config
module Engine = Resim_core.Engine
module Resim = Resim_core.Resim
module Stats = Resim_core.Stats
module Checkpoint = Resim_core.Checkpoint
module Json = Resim_core.Json
module Sample = Resim_sample.Sample
module Sweep = Resim_sweep.Sweep
module Workload = Resim_workloads.Workload
module Generator = Resim_tracegen.Generator
module Hostbench = Resim_reports.Hostbench

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let str = Alcotest.string

let records_of ?(kernel = "gzip") scale =
  let workload = Workload.find kernel in
  let program = Workload.program_of workload ~scale () in
  (Generator.run program).records

let base_records = lazy (records_of 256)

let spec_t =
  Alcotest.testable
    (fun ppf spec -> Format.pp_print_string ppf (Sample.spec_to_string spec))
    ( = )

(* --- spec parsing ------------------------------------------------------ *)

let test_spec_parse_ok () =
  (match Sample.spec_of_string "1000:19000" with
  | Ok spec ->
      check spec_t "two fields, seed defaults"
        { Sample.detail = 1000; warmup = 19000; seed = 0 }
        spec
  | Error message -> Alcotest.fail message);
  (match Sample.spec_of_string "500:4500:7" with
  | Ok spec ->
      check spec_t "three fields"
        { Sample.detail = 500; warmup = 4500; seed = 7 }
        spec
  | Error message -> Alcotest.fail message);
  (* zero warm-up is a legal (if pointless) schedule *)
  match Sample.spec_of_string "1:0" with
  | Ok spec -> check int "warmup may be zero" 0 spec.Sample.warmup
  | Error message -> Alcotest.fail message

let test_spec_round_trip () =
  List.iter
    (fun spec ->
      match Sample.spec_of_string (Sample.spec_to_string spec) with
      | Ok parsed -> check spec_t "round trip" spec parsed
      | Error message -> Alcotest.fail message)
    [ { Sample.detail = 1; warmup = 0; seed = 0 };
      { Sample.detail = 1000; warmup = 19000; seed = 0 };
      { Sample.detail = 500; warmup = 4500; seed = 12345 } ]

let test_spec_parse_errors () =
  List.iter
    (fun (raw, fragment) ->
      match Sample.spec_of_string raw with
      | Ok spec ->
          Alcotest.fail
            (Printf.sprintf "%S parsed as %s" raw
               (Sample.spec_to_string spec))
      | Error message ->
          let contains =
            let h = String.length message and n = String.length fragment in
            let rec scan i =
              i + n <= h
              && (String.sub message i n = fragment || scan (i + 1))
            in
            n = 0 || scan 0
          in
          check bool
            (Printf.sprintf "%S error names the field (%S in %S)" raw
               fragment message)
            true contains)
    [ ("", "expected");
      ("1000", "expected");
      ("0:100", "detail");
      ("-5:100", "detail");
      ("10:x", "warmup");
      ("10:-1", "warmup");
      ("10:5:-2", "seed");
      ("10:5:zz", "seed");
      ("1:2:3:4", "expected") ]

(* --- covers / report arithmetic ---------------------------------------- *)

let synthetic_report ~mean_ipc ~ci95 =
  { Sample.spec = { Sample.detail = 100; warmup = 900; seed = 0 };
    initial_offset = 0;
    intervals = [];
    discarded_partial = 0;
    mean_ipc;
    ci95;
    detailed_instructions = 0;
    warmed_instructions = 0 }

let test_covers () =
  (* 0.125 is exact in binary, so the boundary check is not at the
     mercy of rounding *)
  let report = synthetic_report ~mean_ipc:2.0 ~ci95:0.125 in
  check bool "inside" true (Sample.covers report 1.95);
  check bool "at the boundary" true (Sample.covers report 2.125);
  check bool "outside" false (Sample.covers report 2.2);
  check bool "nan never covered" false (Sample.covers report Float.nan);
  let vacuous = synthetic_report ~mean_ipc:2.0 ~ci95:infinity in
  check bool "infinite CI is vacuously covering" true
    (Sample.covers vacuous 100.0)

(* --- engine warm-up primitives ----------------------------------------- *)

let test_functional_warmup_advances () =
  let records = Lazy.force base_records in
  let full =
    Stats.get_int Stats.committed (Resim.simulate_trace records).stats
  in
  let engine = Engine.create records in
  check bool "fresh pipeline is empty" true (Engine.pipeline_empty engine);
  let warmed = Engine.functional_warmup engine ~max_instructions:50 in
  check int "warms exactly the requested instructions" 50 warmed;
  check bool "cursor advanced" true (Engine.cursor engine > 0);
  check bool "no cycles burned" true (Engine.cycle engine = 0L);
  (* The detailed remainder picks up where the warm-up left off. *)
  (match Engine.run_bounded engine with
  | { Engine.stop = Engine.Drained; _ } -> ()
  | _ -> Alcotest.fail "remainder did not drain");
  check int "warmed + detailed covers the whole trace" full
    (warmed + Stats.get_int Stats.committed (Engine.stats engine));
  (* Asking for more than remains warms what is left and stops. *)
  let engine = Engine.create records in
  let all = Engine.functional_warmup engine ~max_instructions:max_int in
  check int "warm-up stops at the end of the trace" full all

let test_commit_target () =
  let records = Lazy.force base_records in
  let engine = Engine.create records in
  let bounded = Engine.run_bounded ~max_commits:100 engine in
  check bool "stops on the commit target" true
    (bounded.Engine.stop = Engine.Commit_target);
  let committed = Stats.get_int Stats.committed (Engine.stats engine) in
  check bool "committed reached the target" true (committed >= 100);
  (* Overshoot is bounded by one commit window. *)
  check bool "overshoot within one cycle's commits" true
    (committed <= 100 + (Engine.config engine).Config.width);
  check bool "truncated run carries a resume point" true
    (bounded.Engine.resume <> None);
  (* The target is absolute: a second call with the same target is a
     no-op, a higher target continues. *)
  let again = Engine.run_bounded ~max_commits:100 engine in
  check bool "same target is an immediate stop" true
    (again.Engine.stop = Engine.Commit_target);
  check int "no further commits" committed
    (Stats.get_int Stats.committed (Engine.stats engine));
  match Engine.run_bounded engine with
  | { Engine.stop = Engine.Drained; _ } -> ()
  | _ -> Alcotest.fail "unbounded continuation did not drain"

(* --- the differential suite -------------------------------------------- *)

let org_sched_grid =
  List.concat_map
    (fun organization ->
      List.map
        (fun scheduler ->
          { Config.reference with organization; scheduler })
        [ Config.Scan; Config.Event ])
    [ Config.Simple; Config.Improved; Config.Optimized ]

(* For every kernel and every (organization, scheduler) point: the
   full detailed run's IPC must fall inside the sampled run's reported
   95% confidence interval, non-vacuously (enough intervals for a
   finite CI). This is the acceptance gate from the issue. *)
let test_differential_grid () =
  let spec = { Sample.detail = 200; warmup = 1800; seed = 11 } in
  List.iter
    (fun workload ->
      let name = Workload.name_of workload in
      let program = Workload.program_of workload ~scale:4000 () in
      let records = (Generator.run program).records in
      List.iter
        (fun config ->
          let label =
            Printf.sprintf "%s/%s/%s" name
              (Config.organization_name config.Config.organization)
              (Config.scheduler_name config.Config.scheduler)
          in
          let full_ipc =
            Stats.ipc (Resim.simulate_trace ~config records).stats
          in
          match Sample.run ~config ~spec records with
          | Error failure ->
              Alcotest.fail (label ^ ": " ^ Resim.failure_to_string failure)
          | Ok (robust, report) ->
              check bool (label ^ ": sampled run drains") true
                (robust.Resim.stop = Engine.Drained);
              check bool (label ^ ": enough intervals for a finite CI")
                true
                (Float.is_finite report.Sample.ci95
                && List.length report.Sample.intervals >= 2);
              check bool
                (Printf.sprintf "%s: CI covers full IPC (%.4f in %.4f +- %.4f)"
                   label full_ipc report.Sample.mean_ipc report.Sample.ci95)
                true
                (Sample.covers report full_ipc))
        org_sched_grid)
    Workload.all

let test_determinism () =
  let records = Lazy.force base_records in
  let spec = { Sample.detail = 100; warmup = 400; seed = 42 } in
  let run () =
    match Sample.run ~spec records with
    | Ok (_, report) -> report
    | Error failure -> Alcotest.fail (Resim.failure_to_string failure)
  in
  let first = run () and second = run () in
  check bool "identical report for a fixed seed" true (first = second);
  (* A different seed moves the initial offset (and with it the
     interval boundaries) for this period. *)
  let moved =
    match Sample.run ~spec:{ spec with Sample.seed = 43 } records with
    | Ok (_, report) -> report
    | Error failure -> Alcotest.fail (Resim.failure_to_string failure)
  in
  check bool "seed moves the initial offset" true
    (moved.Sample.initial_offset <> first.Sample.initial_offset)

let test_report_accounting () =
  let records = Lazy.force base_records in
  let full =
    Stats.get_int Stats.committed (Resim.simulate_trace records).stats
  in
  let spec = { Sample.detail = 100; warmup = 400; seed = 3 } in
  match Sample.run ~spec records with
  | Error failure -> Alcotest.fail (Resim.failure_to_string failure)
  | Ok (_, report) ->
      check bool "measured something" true
        (report.Sample.detailed_instructions > 0);
      check bool "warmed something" true
        (report.Sample.warmed_instructions > 0);
      (* Detailed + warmed + priming partitions the correct path. *)
      check bool "accounting never exceeds the trace" true
        (report.Sample.detailed_instructions
         + report.Sample.warmed_instructions
        <= full);
      List.iteri
        (fun index interval ->
          check int "intervals are in order" index interval.Sample.index;
          check bool "interval IPC is cycles/instructions" true
            (Float.abs
               (interval.Sample.interval_ipc
               -. float_of_int interval.Sample.instructions
                  /. Int64.to_float interval.Sample.cycles)
            < 1e-9))
        report.Sample.intervals

(* --- budget composition ------------------------------------------------ *)

let test_sample_cycle_budget () =
  let records = Lazy.force base_records in
  let spec = { Sample.detail = 100; warmup = 100; seed = 0 } in
  match Sample.run ~max_cycles:120L ~spec records with
  | Error failure -> Alcotest.fail (Resim.failure_to_string failure)
  | Ok (robust, report) ->
      check bool "stops on the cycle budget" true
        (robust.Resim.stop = Engine.Cycle_budget);
      (match robust.Resim.resume with
      | Some checkpoint ->
          check bool "checkpoint pinned to the budget" true
            (checkpoint.Checkpoint.cycle = 120L)
      | None -> Alcotest.fail "truncated sampled run must yield a resume");
      (* The partial report is still published. *)
      check bool "partial report accounts its windows" true
        (report.Sample.detailed_instructions >= 0)

let test_sample_deadline () =
  let records = Lazy.force base_records in
  (* The engine polls the deadline every 256 cycles, so the detailed
     interval must be long enough to reach a poll point. *)
  let spec = { Sample.detail = 2000; warmup = 0; seed = 0 } in
  match Sample.run ~deadline:(fun () -> true) ~spec records with
  | Error failure -> Alcotest.fail (Resim.failure_to_string failure)
  | Ok (robust, _) ->
      check bool "stops on the deadline" true
        (robust.Resim.stop = Engine.Time_budget)

let test_sweep_sampled_job () =
  let records = Lazy.force base_records in
  let spec = { Sample.detail = 100; warmup = 400; seed = 5 } in
  let job =
    Sweep.trace_job ~label:"sampled" ~sample:spec ~config:Config.reference
      records
  in
  let result = Sweep.run_job job in
  (match result.Sweep.sample_report with
  | Some report ->
      check bool "sweep result carries the sampled report" true
        (report.Sample.detailed_instructions > 0)
  | None -> Alcotest.fail "sampled job lost its report");
  (* And through the pooled robust path. *)
  match (Sweep.run ~jobs:1 [ job ]).Sweep.job_reports with
  | [ { Sweep.outcome = Sweep.Ok result; _ } ] ->
      check bool "pooled sampled job keeps the report" true
        (result.Sweep.sample_report <> None)
  | _ -> Alcotest.fail "sampled sweep job did not complete"

(* --- checkpoint: structured RSM-K parse errors ------------------------- *)

let checkpoint_error raw =
  match Checkpoint.of_string raw with
  | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" raw)
  | Error error -> error

let test_checkpoint_malformations () =
  List.iter
    (fun (raw, code, line) ->
      let error = checkpoint_error raw in
      check str (Printf.sprintf "%S code" raw) code error.Checkpoint.code;
      check int (Printf.sprintf "%S line" raw) line error.Checkpoint.line)
    [ (* whole-document conditions *)
      ("", "RSM-K001", 0);
      ("\n\n", "RSM-K001", 0);
      (* bad header *)
      ("RSCP 2\ncycle 1\ncursor 2\n", "RSM-K002", 1);
      ("bogus\ncycle 1\ncursor 2\n", "RSM-K002", 1);
      (* malformed line (line numbers are raw positions in the
         document, so the blank line still counts) *)
      ("RSCP 1\ncycle 1\n\nwhat is this\ncursor 2\n", "RSM-K003", 4);
      ("RSCP 1\ncycle 1 extra\ncursor 2\n", "RSM-K003", 2);
      (* unparseable values: signed, hex and underscores are refused
         even though OCaml's own of_string accepts them *)
      ("RSCP 1\ncycle -1\ncursor 2\n", "RSM-K004", 2);
      ("RSCP 1\ncycle 0x10\ncursor 2\n", "RSM-K004", 2);
      ("RSCP 1\ncycle 1_000\ncursor 2\n", "RSM-K004", 2);
      ("RSCP 1\ncycle 1\ncursor +2\n", "RSM-K004", 3);
      ("RSCP 1\ncycle 1\ncursor 2\ncounter commit x\n", "RSM-K004", 4);
      (* duplicates *)
      ("RSCP 1\ncycle 1\ncycle 2\ncursor 2\n", "RSM-K005", 3);
      ("RSCP 1\ncycle 1\ncursor 2\ncursor 3\n", "RSM-K005", 4);
      ( "RSCP 1\ncycle 1\ncursor 2\ncounter a 1\ncounter a 2\n",
        "RSM-K005", 5 );
      (* missing required keys *)
      ("RSCP 1\ncursor 2\n", "RSM-K006", 0);
      ("RSCP 1\ncycle 1\n", "RSM-K006", 0) ]

let test_checkpoint_load_io_error () =
  match Checkpoint.load "/nonexistent/definitely/missing.rscp" with
  | Ok _ -> Alcotest.fail "loaded a nonexistent file"
  | Error error ->
      check str "IO failures are RSM-K000" "RSM-K000" error.Checkpoint.code

let test_checkpoint_error_to_string () =
  check str "with line"
    "RSM-K003: line 4: malformed line \"x\""
    (Checkpoint.error_to_string
       { Checkpoint.code = "RSM-K003"; line = 4;
         reason = "malformed line \"x\"" });
  check str "whole-document" "RSM-K001: empty checkpoint"
    (Checkpoint.error_to_string
       { Checkpoint.code = "RSM-K001"; line = 0; reason = "empty checkpoint" })

(* --- sweep: the timed region excludes trace generation ----------------- *)

(* A kernel whose trace *generation* is slow but whose simulation is
   tiny: if host_mips's wall-clock window ever includes the generation
   phase again, the measured wall time jumps past the sleep and this
   test fails. *)
module Slow_generation = struct
  let name = "slowgen"
  let description = "deliberately slow trace generation (timing test)"

  let program ?scale () =
    Unix.sleepf 0.3;
    Workload.program_of (Workload.find "gzip") ?scale ()

  let evaluation_scale = 256

  let profile ~instructions =
    Workload.profile_of (Workload.find "gzip") ~instructions
end

let test_sweep_times_simulate_only () =
  let job =
    Sweep.job ~label:"slowgen" ~scale:(Sweep.Exact 256)
      ~config:Config.reference
      (module Slow_generation : Resim_workloads.Kernel_sig.S)
  in
  (* Serial fail-fast path. *)
  let result = Sweep.run_job job in
  check bool "wall_seconds excludes generation (run_job)" true
    (result.Sweep.telemetry.Sweep.wall_seconds < 0.25);
  check bool "host_mips is positive" true
    (result.Sweep.telemetry.Sweep.host_mips > 0.0);
  (* Pooled robust path. *)
  match (Sweep.run ~jobs:1 [ job ]).Sweep.job_reports with
  | [ { Sweep.outcome = Sweep.Ok result; _ } ] ->
      check bool "wall_seconds excludes generation (pooled)" true
        (result.Sweep.telemetry.Sweep.wall_seconds < 0.25)
  | _ -> Alcotest.fail "slow-generation job did not complete"

(* --- JSON: every emitter produces parseable documents ------------------ *)

let validates label document =
  match Json.validate document with
  | Ok () -> ()
  | Error message ->
      Alcotest.fail (Printf.sprintf "%s: invalid JSON (%s)" label message)

(* Free-form strings reach the emitters through job labels, profiler
   section names and kernel names; this is the string that broke the
   old per-module escapers. *)
let evil = "a\"b\\c\ntab\tctrl\x01slash/close}"

let test_emitters_parse () =
  let records = Lazy.force base_records in
  let outcome = Resim.simulate_trace records in
  validates "Stats.to_json" (Stats.to_json outcome.Resim.stats);
  (* sweep metrics with an adversarial label, sampled and unsampled *)
  let spec = { Sample.detail = 100; warmup = 400; seed = 1 } in
  let report =
    Sweep.run ~jobs:1
      [ Sweep.trace_job ~label:evil ~config:Config.reference records;
        Sweep.trace_job ~label:evil ~sample:spec ~config:Config.reference
          records ]
  in
  validates "Sweep.metrics_json" (Sweep.metrics_json report);
  (* sample report and the spliced --metrics document *)
  (match Sample.run ~spec records with
  | Error failure -> Alcotest.fail (Resim.failure_to_string failure)
  | Ok (robust, sample_report) ->
      validates "Sample.report_to_json" (Sample.report_to_json sample_report);
      validates "Sample.splice_metrics"
        (Sample.splice_metrics
           ~stats_json:(Stats.to_json robust.Resim.outcome.Resim.stats)
           sample_report));
  (* profiler sections with adversarial names *)
  let prof = Resim_obs.Prof.create () in
  Resim_obs.Prof.time prof evil (fun () -> ());
  validates "Prof.to_json" (Resim_obs.Prof.to_json prof);
  (* the bench document's skeleton (null sweep/sampled sections) *)
  validates "Hostbench.to_json" (Hostbench.to_json [])

let property_escape_round_trips =
  QCheck.Test.make ~name:"any string: Json.quote emits parseable JSON"
    ~count:500
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s ->
      match Json.validate (Printf.sprintf "{\"k\":%s}" (Json.quote s)) with
      | Ok () -> true
      | Error _ -> false)

let property_sample_spec_json =
  QCheck.Test.make
    ~name:"any spec: the sampled report JSON is parseable" ~count:20
    QCheck.(pair (int_range 1 50) (int_range 0 200))
    (fun (detail, warmup) ->
      let records = Lazy.force base_records in
      let spec = { Sample.detail; warmup; seed = detail + warmup } in
      match Sample.run ~spec records with
      | Error _ -> false
      | Ok (_, report) ->
          Json.validate (Sample.report_to_json report) = Ok ())

(* --- CLI exit codes ---------------------------------------------------- *)

(* The binary sits next to the test executable's directory inside
   _build/default. *)
let cli =
  Filename.concat
    (Filename.concat
       (Filename.dirname (Filename.dirname Sys.executable_name))
       "bin")
    "resim_cli.exe"

let run_cli args =
  Sys.command
    (Printf.sprintf "%s %s > /dev/null 2> /dev/null"
       (Filename.quote cli) args)

let write_tmp suffix content =
  let path = Filename.temp_file "resim_test" suffix in
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc;
  path

let test_cli_exit_codes () =
  check bool ("CLI binary present at " ^ cli) true (Sys.file_exists cli);
  let corrupt_trace = write_tmp ".trace" "this is not a trace\n" in
  let bad_checkpoint = write_tmp ".rscp" "RSCP 1\ncycle 0x10\ncursor 2\n" in
  let good_text = write_tmp ".trc" "1000 0 1 2 3\n1004 0 2 1 1\n1000 0 1 2 3\n" in
  let bad_text = write_tmp ".trc" "1000 0 1 2 3\n1004 9 1 2 3\n" in
  let cases =
    [ ("clean simulate", "simulate -k gzip -s 200", 0);
      ("sampled simulate", "simulate -k gzip -s 2000 --sample 50:450:3", 0);
      ("bad --sample spec", "simulate -k gzip -s 200 --sample nonsense", 2);
      ("zero-detail --sample", "simulate -k gzip -s 200 --sample 0:100", 2);
      ("sweep bad --sample", "sweep --quick --sample 0:5", 2);
      ( "sample + resume refused",
        Printf.sprintf "simulate -k gzip --sample 50:450 --resume %s"
          (Filename.quote bad_checkpoint),
        2 );
      ( "malformed checkpoint refused",
        Printf.sprintf "simulate -k gzip -s 200 --resume %s"
          (Filename.quote bad_checkpoint),
        2 );
      ("invalid config", "vhdl -w 0", 2);
      ( "lint errors",
        Printf.sprintf "lint %s" (Filename.quote corrupt_trace),
        1 );
      ( "trace fault",
        Printf.sprintf "simulate -t %s" (Filename.quote corrupt_trace),
        3 );
      (* the trace-frontier surface: missing files are a typed exit-2
         usage error, malformed foreign input a typed exit-1, clean
         foreign and streamed runs exit 0 *)
      ("missing trace file", "simulate -t /nonexistent/no-such.rtr", 2);
      ("missing foreign file", "simulate -t /nonexistent/no.trc --format text", 2);
      ( "clean foreign text",
        Printf.sprintf "simulate -t %s --format text" (Filename.quote good_text),
        0 );
      ( "clean foreign text streamed",
        Printf.sprintf "simulate -t %s --format text --stream"
          (Filename.quote good_text),
        0 );
      ( "malformed foreign line",
        Printf.sprintf "simulate -t %s --format text" (Filename.quote bad_text),
        1 );
      ( "malformed foreign lint",
        Printf.sprintf "lint %s --format text" (Filename.quote bad_text),
        1 );
      ("stream + sample refused", "simulate -k gzip --stream --sample 50:450", 2);
      ("stream without trace", "simulate -k gzip --stream", 2) ]
  in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove corrupt_trace;
      Sys.remove bad_checkpoint;
      Sys.remove good_text;
      Sys.remove bad_text)
    (fun () ->
      List.iter
        (fun (label, args, expected) ->
          check int (Printf.sprintf "%s (`resim %s`)" label args) expected
            (run_cli args))
        cases)

let suite =
  [ ("sample:spec",
     [ Alcotest.test_case "valid specs parse" `Quick test_spec_parse_ok;
       Alcotest.test_case "specs round-trip" `Quick test_spec_round_trip;
       Alcotest.test_case "errors name the field" `Quick
         test_spec_parse_errors ]);
    ("sample:engine",
     [ Alcotest.test_case "functional warm-up advances state" `Quick
         test_functional_warmup_advances;
       Alcotest.test_case "commit target stops and resumes" `Quick
         test_commit_target ]);
    ("sample:estimate",
     [ Alcotest.test_case "covers arithmetic" `Quick test_covers;
       Alcotest.test_case "deterministic for a fixed seed" `Quick
         test_determinism;
       Alcotest.test_case "report accounting is consistent" `Quick
         test_report_accounting;
       Alcotest.test_case "CI covers full IPC across the grid" `Slow
         test_differential_grid ]);
    ("sample:budgets",
     [ Alcotest.test_case "cycle budget truncates with a checkpoint" `Quick
         test_sample_cycle_budget;
       Alcotest.test_case "deadline truncates" `Quick test_sample_deadline;
       Alcotest.test_case "sweep jobs carry sampled reports" `Quick
         test_sweep_sampled_job ]);
    ("sample:checkpoint",
     [ Alcotest.test_case "every malformation class has its code" `Quick
         test_checkpoint_malformations;
       Alcotest.test_case "IO failure is RSM-K000" `Quick
         test_checkpoint_load_io_error;
       Alcotest.test_case "error rendering" `Quick
         test_checkpoint_error_to_string ]);
    ("sample:sweep-timing",
     [ Alcotest.test_case "host_mips window excludes generation" `Quick
         test_sweep_times_simulate_only ]);
    ("sample:json",
     [ Alcotest.test_case "every emitter parses" `Quick test_emitters_parse;
       QCheck_alcotest.to_alcotest property_escape_round_trips;
       QCheck_alcotest.to_alcotest property_sample_spec_json ]);
    ("sample:cli",
     [ Alcotest.test_case "exit-code table" `Slow test_cli_exit_codes ]) ]
