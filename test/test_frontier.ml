(* Tests for the trace frontier: foreign-format adapters (text and
   RISC-V profiles), constant-memory streaming cursors and encoders,
   sharded trace sets, and the differential guarantee that the streamed
   engine path is stats-identical to the in-memory path on every
   workload kernel under both schedulers. *)

open Resim_core
module Record = Resim_trace.Record
module Codec = Resim_trace.Codec
module Adapter = Resim_trace.Adapter
module Stream = Resim_trace.Stream
module Fault = Resim_trace.Fault
module Fault_inject = Resim_trace.Fault_inject
module Trace_check = Resim_check.Check.Trace
module Synthetic = Resim_tracegen.Synthetic
module System = Resim_multicore.System

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string
let i64 = Alcotest.int64

let with_tmp ~suffix f =
  let path = Filename.temp_file "resim_frontier" suffix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let write_bytes path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let stats_dump stats = Format.asprintf "%a" Stats.pp stats
let with_scheduler scheduler (config : Config.t) = { config with scheduler }

(* ------------------------------------------------------------------- *)
(* Differential: streamed pull path vs in-memory array path, every
   workload kernel (plus a synthetic eighth), both schedulers.          *)

let kernel_records =
  lazy
    (let kernels =
       Resim_workloads.Workload.all @ Resim_workloads.Workload.extended
     in
     let from_kernels =
       List.map
         (fun kernel ->
           let name = Resim_workloads.Workload.name_of kernel in
           let program = Resim_workloads.Workload.program_of kernel () in
           (name, Resim_tracegen.Generator.records program))
         kernels
     in
     let synthetic =
       ( "synthetic",
         Synthetic.generate ~seed:7
           (Synthetic.balanced ~name:"eighth" ~instructions:4000) )
     in
     from_kernels @ [ synthetic ])

let robust_exn label = function
  | Ok (r : Resim.robust) -> r
  | Error failure ->
      Alcotest.failf "%s: %s" label (Resim.failure_to_string failure)

let test_streamed_matches_in_memory () =
  List.iter
    (fun (name, records) ->
      with_tmp ~suffix:".rtr" (fun path ->
          Codec.write_file ~format:Codec.Compact path records;
          List.iter
            (fun scheduler ->
              let label =
                Printf.sprintf "%s/%s" name
                  (match scheduler with
                  | Config.Scan -> "scan"
                  | Config.Event -> "event")
              in
              let config = with_scheduler scheduler Config.reference in
              let in_memory =
                robust_exn label (Resim.simulate_robust ~config records)
              in
              let stream =
                match Stream.open_file ~chunk:512 path with
                | Ok stream -> stream
                | Error e ->
                    Alcotest.failf "%s: open_file: %s" label
                      (Codec.error_to_string e)
              in
              let streamed =
                Fun.protect
                  ~finally:(fun () -> Stream.close stream)
                  (fun () ->
                    robust_exn label
                      (Resim.simulate_pull_robust ~config (fun () ->
                           Stream.next stream)))
              in
              check i64
                (label ^ ": major cycles")
                (Stats.get Stats.major_cycles in_memory.outcome.stats)
                (Stats.get Stats.major_cycles streamed.outcome.stats);
              check string
                (label ^ ": full stats dump")
                (stats_dump in_memory.outcome.stats)
                (stats_dump streamed.outcome.stats))
            [ Config.Scan; Config.Event ]))
    (Lazy.force kernel_records)

(* ------------------------------------------------------------------- *)
(* Chunked cursors: absolute offsets and record-for-record agreement
   with the in-memory cursor on every corruption class.                 *)

(* Records until the first structured error; errors are sticky, so the
   stream stops there. *)
let drain_cursor cursor =
  let rec loop acc =
    if not (Codec.Cursor.has_next cursor) then (List.rev acc, None)
    else
      match Codec.Cursor.next_result cursor with
      | Ok record -> loop (record :: acc)
      | Error e -> (List.rev acc, Some e)
  in
  loop []

let in_memory_view data =
  match Codec.Cursor.of_string_result data with
  | Error e -> ([], Some e)
  | Ok cursor -> drain_cursor cursor

let chunked_view ~chunk data =
  with_tmp ~suffix:".rtr" (fun path ->
      write_bytes path data;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match Codec.Cursor.of_channel_result ~chunk ic with
          | Error e -> ([], Some e)
          | Ok cursor -> drain_cursor cursor))

let assert_views_agree ~label ~chunk data =
  let mem_records, mem_error = in_memory_view data in
  let chk_records, chk_error = chunked_view ~chunk data in
  check int (label ^ ": record count") (List.length mem_records)
    (List.length chk_records);
  check bool (label ^ ": records agree") true (mem_records = chk_records);
  match (mem_error, chk_error) with
  | None, None -> ()
  | Some m, Some c ->
      check string (label ^ ": error code") m.Codec.error_code c.Codec.error_code;
      (* The chunked cursor must report the same ABSOLUTE file offset
         the in-memory cursor sees, not an offset within its refill
         buffer. *)
      check int (label ^ ": absolute byte offset") m.byte_offset c.byte_offset
  | Some m, None ->
      Alcotest.failf "%s: chunked cursor missed %s at %d" label m.error_code
        m.byte_offset
  | None, Some c ->
      Alcotest.failf "%s: chunked cursor invented %s at %d" label c.error_code
        c.byte_offset

let corruption_records =
  lazy
    (Synthetic.generate ~seed:11
       (Synthetic.balanced ~name:"corruptee" ~instructions:600))

let test_chunked_agrees_on_every_corruption_class () =
  let records = Lazy.force corruption_records in
  List.iter
    (fun fault ->
      List.iter
        (fun format ->
          let data = Fault_inject.apply ~seed:3 ~format fault records in
          let label =
            Printf.sprintf "%s/%s" (Fault_inject.name fault)
              (match format with Codec.Fixed -> "fixed" | Codec.Compact -> "compact")
          in
          (* chunk far smaller than the payload, so any mid-stream error
             sits many refills past the first buffer *)
          assert_views_agree ~label ~chunk:17 data)
        [ Codec.Fixed; Codec.Compact ])
    Fault_inject.all

let test_truncation_at_chunk_boundaries () =
  let records = Lazy.force corruption_records in
  let data = Codec.encode records in
  let chunk = 64 in
  List.iter
    (fun cut ->
      if cut > 0 && cut < String.length data then
        let truncated = String.sub data 0 cut in
        assert_views_agree
          ~label:(Printf.sprintf "cut at %d" cut)
          ~chunk truncated)
    [ chunk - 1;
      chunk;
      chunk + 1;
      (2 * chunk) - 1;
      2 * chunk;
      (2 * chunk) + 1;
      String.length data - 1 ]

let test_error_offset_is_past_first_chunk () =
  (* Directly pin the absolute-offset property: truncate well past the
     first refill and demand the reported offset land beyond it. *)
  let records = Lazy.force corruption_records in
  let data = Codec.encode records in
  let chunk = 64 in
  let cut = min (String.length data - 1) (7 * chunk) in
  let _, error = chunked_view ~chunk (String.sub data 0 cut) in
  match error with
  | None -> Alcotest.fail "truncated stream decoded cleanly"
  | Some e ->
      check string "truncation code" "RSM-T002" e.Codec.error_code;
      check bool
        (Printf.sprintf "offset %d beyond first chunk %d" e.byte_offset chunk)
        true
        (e.byte_offset > chunk)

(* ------------------------------------------------------------------- *)
(* Streaming encoder: push through a bounded buffer, read back the
   streamed header, decode exactly the pushed records.                  *)

let test_encoder_streamed_roundtrip () =
  let records =
    Synthetic.generate ~seed:23
      (Synthetic.balanced ~name:"encoder" ~instructions:500)
  in
  List.iter
    (fun format ->
      with_tmp ~suffix:".rtr" (fun path ->
          let oc = open_out_bin path in
          let encoder = Codec.Encoder.to_channel ~format ~flush_bytes:32 oc in
          Array.iter (Codec.Encoder.push encoder) records;
          check int "pushed" (Array.length records)
            (Codec.Encoder.pushed encoder);
          Codec.Encoder.close encoder;
          Codec.Encoder.close encoder (* idempotent *);
          close_out oc;
          let cursor =
            match Codec.Cursor.of_string_result (read_bytes path) with
            | Ok cursor -> cursor
            | Error e -> Alcotest.failf "header: %s" (Codec.error_to_string e)
          in
          check bool "streamed header" true (Codec.Cursor.streamed cursor);
          check bool "format preserved" true (Codec.Cursor.format cursor = format);
          let decoded, error = drain_cursor cursor in
          (match error with
          | None -> ()
          | Some e -> Alcotest.failf "decode: %s" (Codec.error_to_string e));
          (* has_next is exact on streamed cursors: end padding never
             reads as one more record *)
          check int "exact record count" (Array.length records)
            (List.length decoded);
          check bool "records round-trip" true
            (Array.to_list records = decoded);
          (* and the pull-stream face agrees *)
          match Stream.open_file ~chunk:96 path with
          | Error e -> Alcotest.failf "open_file: %s" (Codec.error_to_string e)
          | Ok stream ->
              check bool "stream face round-trips" true
                (Stream.to_array stream = records)))
    [ Codec.Fixed; Codec.Compact ]

let test_read_file_missing_is_typed () =
  let path = "/nonexistent/resim-frontier-missing.rtr" in
  (match Codec.read_file_result path with
  | Ok _ -> Alcotest.fail "read_file_result succeeded on a missing file"
  | Error e -> check string "read_file_result code" "RSM-T009" e.Codec.error_code);
  (match Stream.open_file path with
  | Ok _ -> Alcotest.fail "open_file succeeded on a missing file"
  | Error e -> check string "open_file code" "RSM-T009" e.Codec.error_code);
  (* and read_file raises the typed Corrupt, never a raw Sys_error *)
  match Codec.read_file path with
  | _ -> Alcotest.fail "read_file succeeded on a missing file"
  | exception Codec.Corrupt _ -> ()

(* ------------------------------------------------------------------- *)
(* Shards: block-safe splitting, expansion, concatenating stream.       *)

let shard_records =
  (* A kernel trace, so real wrong-path blocks cross naive cut points. *)
  lazy (snd (List.hd (Lazy.force kernel_records)))

let with_shards ~records_per_shard records f =
  let stem = Filename.temp_file "resim_frontier_shard" "" in
  Sys.remove stem;
  let paths = Codec.Shard.write ~records_per_shard ~stem records in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths)
    (fun () -> f ~stem paths)

let test_shard_roundtrip_and_lint () =
  let records = Lazy.force shard_records in
  with_shards ~records_per_shard:100 records (fun ~stem paths ->
      check bool "several shards" true (List.length paths > 1);
      (* every shard is self-describing: lints clean alone, and never
         starts inside a wrong-path block *)
      List.iter
        (fun path ->
          check bool
            (path ^ " lints clean")
            true
            (Trace_check.clean (Trace_check.lint_file path));
          let shard, _ = Codec.read_file path in
          if Array.length shard > 0 then
            check bool
              (path ^ " starts untagged")
              false shard.(0).Record.wrong_path)
        paths;
      (* expansion: from the bare stem and from any member *)
      check bool "expand stem" true (Codec.Shard.expand stem = Some paths);
      check bool "expand member" true
        (Codec.Shard.expand (List.nth paths 1) = Some paths);
      (* concatenating stream reproduces the original trace *)
      (match Stream.open_sharded paths with
      | Error e -> Alcotest.failf "open_sharded: %s" (Codec.error_to_string e)
      | Ok stream ->
          check bool "sharded concat round-trips" true
            (Stream.to_array stream = records));
      match Stream.open_path stem with
      | Error e -> Alcotest.failf "open_path: %s" (Codec.error_to_string e)
      | Ok stream ->
          check bool "open_path finds the set" true
            (Stream.to_array stream = records))

let test_shard_empty_trace () =
  with_shards ~records_per_shard:10 [||] (fun ~stem:_ paths ->
      check int "one empty shard" 1 (List.length paths);
      let records, _ = Codec.read_file (List.hd paths) in
      check int "empty" 0 (Array.length records))

(* ------------------------------------------------------------------- *)
(* Multicore: a core fed by a truncated stream reports `Truncated and
   carries the fault; healthy cores still drain.                        *)

let test_multicore_truncated_stream () =
  let records =
    Synthetic.generate ~seed:3
      (Synthetic.balanced ~name:"cores" ~instructions:400)
  in
  let data = Codec.encode records in
  let truncated = String.sub data 0 (String.length data - 3) in
  with_tmp ~suffix:".rtr" (fun path ->
      write_bytes path truncated;
      let stream =
        match Stream.open_file ~chunk:64 path with
        | Ok stream -> stream
        | Error e -> Alcotest.failf "open_file: %s" (Codec.error_to_string e)
      in
      let specs =
        [ { System.name = "healthy";
            feed = System.Records records;
            config = Config.reference };
          { System.name = "starved";
            feed = System.Stream (fun () -> Stream.next stream);
            config = Config.reference } ]
      in
      let system = System.create specs in
      check bool "truncated stream is never `Finished" true
        (System.run system = `Truncated);
      match System.results system with
      | [ healthy; starved ] ->
          check bool "healthy core drains" true healthy.System.drained;
          check bool "healthy core has no fault" true
            (healthy.System.fault = None);
          check bool "starved core did not drain" false
            starved.System.drained;
          (match starved.System.fault with
          | None -> Alcotest.fail "starved core carries no fault"
          | Some fault ->
              check string "fault code" "RSM-T002" fault.Fault.code)
      | results ->
          Alcotest.failf "expected 2 core results, got %d"
            (List.length results))

let test_multicore_stream_feed_matches_records_feed () =
  let records =
    Synthetic.generate ~seed:9
      (Synthetic.balanced ~name:"twin" ~instructions:300)
  in
  with_tmp ~suffix:".rtr" (fun path ->
      Codec.write_file path records;
      let stream =
        match Stream.open_file ~chunk:128 path with
        | Ok stream -> stream
        | Error e -> Alcotest.failf "open_file: %s" (Codec.error_to_string e)
      in
      let specs =
        [ { System.name = "array";
            feed = System.Records records;
            config = Config.reference };
          { System.name = "stream";
            feed = System.Stream (fun () -> Stream.next stream);
            config = Config.reference } ]
      in
      let system = System.create specs in
      check bool "both drain" true (System.run system = `Finished);
      match System.results system with
      | [ array; stream_result ] ->
          check string "per-core stats identical"
            (stats_dump array.System.stats)
            (stats_dump stream_result.System.stats)
      | _ -> Alcotest.fail "expected 2 core results")

(* ------------------------------------------------------------------- *)
(* Adapters: grammar acceptance, typed RSM-A diagnostics, round-trip
   through the codec, lint-clean synthesis.                             *)

let adapt ?(format = Adapter.Text) source =
  Adapter.adapt_string_result ~format ~file:"test.trc" source

let adapt_exn ?format label source =
  match adapt ?format source with
  | Ok records -> records
  | Error e -> Alcotest.failf "%s: %s" label (Adapter.error_to_string e)

let expect_error ?format label expected_code ?line ?col source =
  match adapt ?format source with
  | Ok _ -> Alcotest.failf "%s: expected %s, got records" label expected_code
  | Error e ->
      check string (label ^ ": code") expected_code e.Adapter.code;
      Option.iter (fun l -> check int (label ^ ": line") l e.Adapter.line) line;
      Option.iter (fun c -> check int (label ^ ": col") c e.Adapter.col) col

let test_text_tolerant_lexing () =
  (* CRLF endings, comments, blank lines, trailing whitespace: all
     accepted; a back-branch makes the trace non-trivial. *)
  let source =
    "# header comment\r\n\
     1000 0 1 2 3\r\n\
     \r\n\
     1004 1 4 1 2   \n\
     1000 2 5 4 -1\t\n"
  in
  let records = adapt_exn "tolerant" source in
  let correct =
    Array.to_list records |> List.filter (fun r -> not r.Record.wrong_path)
  in
  check int "three instructions" 3 (List.length correct);
  (* the 1004 -> 1000 discontinuity is a taken conditional branch *)
  check bool "back edge inferred as branch" true
    (List.exists
       (fun r ->
         match r.Record.payload with
         | Record.Branch { kind = Resim_isa.Opcode.Cond; taken = true; target }
           ->
             (* targets are word indices: pc lsr 2 *)
             target = 0x1000 lsr 2
         | _ -> false)
       correct)

let test_text_not_taken_reclassification () =
  (* A PC that once branched and later falls through must produce a
     NOT-taken conditional, so directions really interleave. *)
  let buffer = Buffer.create 256 in
  for _ = 1 to 3 do
    Buffer.add_string buffer "1000 0 1 2 3\n1004 0 2 1 1\n"
    (* 1004 jumps back: taken branch at 1004 *)
  done;
  Buffer.add_string buffer "1000 0 1 2 3\n1004 0 2 1 1\n1008 0 3 2 1\n";
  let records = adapt_exn "fallthrough" (Buffer.contents buffer) in
  check bool "not-taken conditional emitted" true
    (Array.exists
       (fun r ->
         match r.Record.payload with
         | Record.Branch { kind = Resim_isa.Opcode.Cond; taken = false; _ } ->
             not r.Record.wrong_path
         | _ -> false)
       records)

let test_adapter_rsm_a_catalog () =
  expect_error "empty input" "RSM-A006" "";
  expect_error "only comments" "RSM-A006" "# nothing\n\n# here\n";
  expect_error "field count" "RSM-A001" ~line:1 "1000 0 1 2\n";
  expect_error "not a number" "RSM-A002" ~line:2 ~col:6 "1000 0 1 2 3\n1004 x 1 2 3\n";
  expect_error "op out of domain" "RSM-A003" ~line:1 ~col:6 "1000 9 1 2 3\n";
  expect_error "register out of domain" "RSM-A003" "1000 0 -2 2 3\n";
  expect_error "overlong line" "RSM-A004" ~line:1
    (String.make (Adapter.default_config.max_line_bytes + 16) 'a' ^ "\n");
  (* RISC-V profile *)
  expect_error ~format:Adapter.Riscv "compressed word" "RSM-A005"
    "1000 00000001\n";
  expect_error ~format:Adapter.Riscv "load without mem" "RSM-A001"
    "1000 00052503\n"

let test_adapter_errors_are_sticky () =
  let adapter =
    Adapter.of_string ~format:Adapter.Text ~file:"sticky.trc"
      "1000 0 1 2 3\n1004 0 2 1 1\n1008 9 1 2 3\n"
  in
  (* one line of lookahead: records before the window reaching the bad
     line still come out *)
  check bool "first record ok" true
    (match Adapter.next_result adapter with Ok (Some _) -> true | _ -> false);
  let rec first_error () =
    match Adapter.next_result adapter with
    | Ok (Some _) -> first_error ()
    | Ok None -> Alcotest.fail "malformed line adapted"
    | Error e -> e
  in
  let first = first_error () in
  check string "error names the bad line" "RSM-A003" first.Adapter.code;
  check int "error line" 3 first.Adapter.line;
  (match Adapter.next_result adapter with
  | Error e -> check string "same error again" first.Adapter.code e.Adapter.code
  | Ok _ -> Alcotest.fail "error was not sticky");
  (* the pull face raises the typed fault with the RSM-A code *)
  let adapter2 =
    Adapter.of_string ~format:Adapter.Text ~file:"sticky.trc" "1000 9 1 2 3\n"
  in
  let pull = Adapter.pull_exn adapter2 in
  match pull () with
  | _ -> Alcotest.fail "pull_exn returned on a malformed line"
  | exception Fault.Trace_fault f -> check string "pull fault" "RSM-A003" f.Fault.code

let riscv_loop_source =
  (* A tight RV32 loop: lw a0,0(a1); mul a0,a1,a2; sw a0,0(a2);
     bne x12,x13,-12 — the branch is taken (back to 0x1000) 5 times,
     then falls through to a final nop. *)
  let buffer = Buffer.create 512 in
  for i = 0 to 5 do
    Buffer.add_string buffer
      (Printf.sprintf "1000 0005a503 mem %x\n" (0x8000 + (8 * i)));
    Buffer.add_string buffer "1004 02c58533\n";
    Buffer.add_string buffer
      (Printf.sprintf "1008 00a62023 mem %x\n" (0x9000 + (8 * i)));
    Buffer.add_string buffer "100c fed61ae3\n"
  done;
  Buffer.add_string buffer "1010 00000013\n";
  Buffer.contents buffer

let test_riscv_decode_classes () =
  let records = adapt_exn ~format:Adapter.Riscv "riscv loop" riscv_loop_source in
  let correct =
    Array.to_list records |> List.filter (fun r -> not r.Record.wrong_path)
  in
  let count predicate = List.length (List.filter predicate correct) in
  check int "loads" 6
    (count (fun r ->
         match r.Record.payload with
         | Record.Memory { is_load = true; _ } -> true
         | _ -> false));
  check int "stores" 6
    (count (fun r ->
         match r.Record.payload with
         | Record.Memory { is_load = false; _ } -> true
         | _ -> false));
  check int "multiplies" 6
    (count (fun r ->
         match r.Record.payload with
         | Record.Other { op_class = Record.Mult } -> true
         | _ -> false));
  check bool "taken and not-taken conditionals" true
    (let taken, fallthrough =
       List.fold_left
         (fun (t, f) r ->
           match r.Record.payload with
           | Record.Branch { kind = Resim_isa.Opcode.Cond; taken; _ } ->
               if taken then (t + 1, f) else (t, f + 1)
           | _ -> (t, f))
         (0, 0) correct
     in
     taken = 5 && fallthrough = 1)

let test_adapted_streams_lint_clean () =
  List.iter
    (fun (label, format, source) ->
      let adapter = Adapter.of_string ~format ~file:"lint.trc" source in
      let report = Trace_check.lint_adapter adapter in
      check bool (label ^ " lints clean") true (Trace_check.clean report))
    [ ("text", Adapter.Text,
       "1000 0 1 2 3\n1004 0 2 1 1\n1000 0 1 2 3\n1004 0 2 1 1\n1008 0 3 2 1\n");
      ("riscv", Adapter.Riscv, riscv_loop_source) ]

(* Adapted streams carry synthesized wrong-path blocks once the
   predictor mispredicts; the engine must replay them as wrong-path
   fetches. *)
let test_adapter_wrong_path_reaches_engine () =
  let buffer = Buffer.create 4096 in
  (* alternate directions at one branch PC to defeat the predictor *)
  for i = 0 to 63 do
    Buffer.add_string buffer "1000 0 1 2 3\n";
    if i mod 2 = 0 then Buffer.add_string buffer "1004 0 2 1 1\n"
      (* next line loops back: taken *)
    else Buffer.add_string buffer "1004 0 2 1 1\n1008 0 3 2 1\n"
    (* fall-through: not taken *)
  done;
  let adapter =
    Adapter.of_string ~format:Adapter.Text ~file:"flip.trc"
      (Buffer.contents buffer)
  in
  let records =
    match Adapter.to_records_result adapter with
    | Ok records -> records
    | Error e -> Alcotest.failf "adapt: %s" (Adapter.error_to_string e)
  in
  let stats = Adapter.stats adapter in
  check bool "adapter saw mispredicts" true (stats.Adapter.mispredicted > 0);
  check bool "wrong-path records synthesized" true (stats.Adapter.wrong_path > 0);
  check int "tagged records in stream" stats.Adapter.wrong_path
    (Array.length (Array.of_seq
       (Seq.filter (fun r -> r.Record.wrong_path)
          (Array.to_seq records))));
  let robust =
    robust_exn "adapted simulate" (Resim.simulate_robust records)
  in
  check bool "engine fetched down the wrong path" true
    (Stats.get Stats.fetched_wrong_path robust.outcome.stats > 0L)

(* Round-trip property: adapt -> encode -> decode -> re-adapt agree. *)
let text_trace_gen =
  QCheck.Gen.(
    let line =
      map
        (fun (pc, op, (dst, src1, src2)) ->
          Printf.sprintf "%x %d %d %d %d" pc op dst src1 src2)
        (triple (int_bound 0xFFFF) (int_bound 2)
           (triple (int_range (-1) 31) (int_range (-1) 31) (int_range (-1) 31)))
    in
    map (String.concat "\n") (list_size (int_range 1 120) line))

let adapter_roundtrip =
  QCheck.Test.make ~name:"adapt -> encode -> decode -> re-adapt is identity"
    ~count:100
    (QCheck.make ~print:(fun s -> s) text_trace_gen)
    (fun source ->
      match adapt source with
      | Error _ -> QCheck.assume_fail ()
      | Ok records ->
          let again =
            match adapt source with
            | Ok r -> r
            | Error _ -> [||]
          in
          let decoded_fixed, _ = Codec.decode (Codec.encode ~format:Codec.Fixed records) in
          let decoded_compact, _ =
            Codec.decode (Codec.encode ~format:Codec.Compact records)
          in
          records = again
          && records = decoded_fixed
          && records = decoded_compact
          && Trace_check.clean (Trace_check.lint_records records))

(* ------------------------------------------------------------------- *)

let suite =
  [ ("frontier:streamed differential",
     [ Alcotest.test_case "pull path matches in-memory on all kernels" `Slow
         test_streamed_matches_in_memory ]);
    ("frontier:chunked cursor",
     [ Alcotest.test_case "agrees with in-memory on every corruption class"
         `Quick test_chunked_agrees_on_every_corruption_class;
       Alcotest.test_case "truncation at chunk boundaries" `Quick
         test_truncation_at_chunk_boundaries;
       Alcotest.test_case "offsets are absolute past refills" `Quick
         test_error_offset_is_past_first_chunk ]);
    ("frontier:streamed encoder",
     [ Alcotest.test_case "push/close round-trips with exact count" `Quick
         test_encoder_streamed_roundtrip;
       Alcotest.test_case "missing file is typed RSM-T009" `Quick
         test_read_file_missing_is_typed ]);
    ("frontier:shards",
     [ Alcotest.test_case "round-trip, expansion, per-shard lint" `Quick
         test_shard_roundtrip_and_lint;
       Alcotest.test_case "empty trace yields one empty shard" `Quick
         test_shard_empty_trace ]);
    ("frontier:multicore streams",
     [ Alcotest.test_case "truncated stream is `Truncated with fault" `Quick
         test_multicore_truncated_stream;
       Alcotest.test_case "stream feed matches records feed" `Quick
         test_multicore_stream_feed_matches_records_feed ]);
    ("frontier:adapters",
     [ Alcotest.test_case "tolerant lexing (CRLF, comments, blanks)" `Quick
         test_text_tolerant_lexing;
       Alcotest.test_case "fall-through reclassifies as not-taken" `Quick
         test_text_not_taken_reclassification;
       Alcotest.test_case "RSM-A catalog with file:line:col" `Quick
         test_adapter_rsm_a_catalog;
       Alcotest.test_case "errors are sticky; pull raises typed fault" `Quick
         test_adapter_errors_are_sticky;
       Alcotest.test_case "riscv decode classes" `Quick
         test_riscv_decode_classes;
       Alcotest.test_case "adapted streams lint clean" `Quick
         test_adapted_streams_lint_clean;
       Alcotest.test_case "synthesized wrong path reaches the engine" `Quick
         test_adapter_wrong_path_reaches_engine;
       QCheck_alcotest.to_alcotest adapter_roundtrip ]) ]
