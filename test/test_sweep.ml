(* Tests for the domain-parallel sweep layer: the worker pool, the
   sweep runner's determinism across -j values, and the reworked
   (config-keyed, domain-safe) report runner cache. *)

module Pool = Resim_sweep.Pool
module Sweep = Resim_sweep.Sweep
module Runner = Resim_reports.Runner
module Stats = Resim_core.Stats

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let i64 = Alcotest.int64

(* --- Pool --------------------------------------------------------------- *)

let test_pool_map_order () =
  let input = Array.init 100 (fun i -> i) in
  let serial = Array.map (fun i -> i * i) input in
  let parallel = Pool.map ~jobs:4 (fun i -> i * i) input in
  check bool "results in input order" true (serial = parallel);
  check bool "empty input" true (Pool.map ~jobs:4 (fun i -> i) [||] = [||])

let test_pool_map_uneven_work () =
  (* Make late-submitted tasks finish first; order must still hold. *)
  let input = Array.init 16 (fun i -> i) in
  let work i =
    let spin = (16 - i) * 10_000 in
    let acc = ref 0 in
    for k = 1 to spin do
      acc := !acc + (k land 7)
    done;
    (i, !acc land 0)
  in
  let results = Pool.map ~jobs:4 work input in
  Array.iteri
    (fun index (i, zero) ->
      check int "slot matches input index" index i;
      check int "work ran" 0 zero)
    results

let test_pool_exception_propagates () =
  let boom i = if i = 7 then failwith "boom" else i in
  (match Pool.map ~jobs:3 boom (Array.init 20 (fun i -> i)) with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure message -> check bool "message" true (message = "boom"));
  (* The pool survives a failing sibling: other tasks still complete. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let failing = Pool.submit pool (fun () -> failwith "late") in
      let fine = Pool.submit pool (fun () -> 41 + 1) in
      check int "sibling unaffected" 42 (Pool.await fine);
      match Pool.await failing with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure _ -> ())

let test_pool_submit_after_shutdown () =
  let pool = Pool.create ~jobs:2 () in
  check int "jobs" 2 (Pool.jobs pool);
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.submit pool (fun () -> ())))

let test_pool_validation () =
  Alcotest.check_raises "zero jobs"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0 ()));
  check bool "recommended >= 1" true (Pool.recommended_jobs () >= 1)

(* --- Sweep determinism --------------------------------------------------- *)

let small_grid () =
  let find = Resim_workloads.Workload.find in
  let reference = Resim_core.Config.reference in
  [ Sweep.job ~label:"gzip-ref" ~scale:(Sweep.Exact 512) ~config:reference
      (find "gzip");
    Sweep.job ~label:"parser-ref" ~scale:(Sweep.Exact 512)
      ~config:reference (find "parser");
    Sweep.job ~label:"gzip-rob32" ~scale:(Sweep.Exact 512)
      ~config:{ reference with rob_entries = 32 } (find "gzip");
    Sweep.job ~label:"vortex-fast" ~scale:(Sweep.Exact 256)
      ~config:Resim_core.Config.fast_comparable (find "vortex") ]

let test_sweep_parallel_equals_serial () =
  let grid = small_grid () in
  let serial = Sweep.completed (Sweep.run ~jobs:1 grid) in
  let parallel = Sweep.completed (Sweep.run ~jobs:4 grid) in
  check int "same job count" (List.length serial) (List.length parallel);
  List.iter2
    (fun (a : Sweep.result) (b : Sweep.result) ->
      check bool (a.job.label ^ " same job") true (a.job.label = b.job.label);
      (* Byte-identical traces... *)
      check bool
        (a.job.label ^ " byte-identical trace")
        true
        (Resim_trace.Codec.encode a.generated.records
        = Resim_trace.Codec.encode b.generated.records);
      (* ...and identical timing outcomes. *)
      check i64
        (a.job.label ^ " same major cycles")
        (Stats.get Stats.major_cycles a.outcome.stats)
        (Stats.get Stats.major_cycles b.outcome.stats);
      check i64
        (a.job.label ^ " same committed")
        (Stats.get Stats.committed a.outcome.stats)
        (Stats.get Stats.committed b.outcome.stats);
      check bool
        (a.job.label ^ " same bits/instr")
        true
        (a.outcome.bits_per_instruction = b.outcome.bits_per_instruction))
    serial parallel

(* High-parallelism determinism, the runtime counterpart of the
   resim-dsafe static gate: the same grid must produce the same report
   at -j 1/4/8 under both schedulers, with the default policy's
   progress watchdog armed so a pool regression shows up as a bounded
   deadlock report instead of a hang. *)
let with_scheduler scheduler (job : Sweep.job) =
  { job with
    Sweep.config = { job.Sweep.config with Resim_core.Config.scheduler } }

let fingerprint report =
  List.map
    (fun (r : Sweep.result) ->
      ( r.job.label,
        Stats.get Stats.major_cycles r.outcome.stats,
        Stats.get Stats.committed r.outcome.stats,
        r.outcome.bits_per_instruction ))
    (Sweep.completed report)

let test_sweep_high_j_deterministic () =
  List.iter
    (fun scheduler ->
      let name = Resim_core.Config.scheduler_name scheduler in
      let grid = List.map (with_scheduler scheduler) (small_grid ()) in
      let run jobs =
        fingerprint (Sweep.run ~policy:Sweep.default_policy ~jobs grid)
      in
      let reference = run 1 in
      check int (name ^ ": all jobs completed serially")
        (List.length grid) (List.length reference);
      List.iter
        (fun jobs ->
          check bool
            (Printf.sprintf "%s scheduler: -j %d report = serial" name jobs)
            true
            (run jobs = reference))
        [ 4; 8 ])
    [ Resim_core.Config.Scan; Resim_core.Config.Event ]

let test_sweep_telemetry () =
  let results =
    Sweep.completed
      (Sweep.run ~jobs:2
         [ Sweep.job ~scale:(Sweep.Exact 256)
             ~config:Resim_core.Config.reference
             (Resim_workloads.Workload.find "gzip") ])
  in
  match results with
  | [ result ] ->
      check bool "wall time measured" true
        (result.telemetry.wall_seconds >= 0.0);
      check bool "host MIPS non-negative" true
        (result.telemetry.host_mips >= 0.0);
      check bool "total wall = sum" true
        (Sweep.total_wall results = result.telemetry.wall_seconds);
      let rendered = Format.asprintf "%a" Sweep.pp_table results in
      check bool "table renders the row" true
        (String.length rendered > 100)
  | _ -> Alcotest.fail "expected one result"

(* --- Runner cache -------------------------------------------------------- *)

let test_runner_keying_sees_config () =
  (* Two configurations behind the same key must not alias: the ROB size
     changes both the wrong-path block length (trace generation) and the
     timing, so everything must differ. *)
  Runner.clear_cache ();
  let workload = Resim_workloads.Workload.find "gzip" in
  let reference = Resim_core.Config.reference in
  let a =
    Runner.run_kernel ~key:"same-key" ~config:reference
      ~scale:(Runner.Exact 512) workload
  in
  let b =
    Runner.run_kernel ~key:"same-key"
      ~config:{ reference with rob_entries = 32 }
      ~scale:(Runner.Exact 512) workload
  in
  check bool "distinct cache entries" true (a != b);
  check bool "config preserved per entry" true
    (a.config.rob_entries = 16 && b.config.rob_entries = 32);
  check bool "different wrong-path blocks" true
    (a.generated.wrong_path <> b.generated.wrong_path
    || Array.length a.generated.records <> Array.length b.generated.records);
  Runner.clear_cache ()

let test_runner_prewarm_seeds_cache () =
  Runner.clear_cache ();
  let workload = Resim_workloads.Workload.find "parser" in
  let config = Resim_core.Config.reference in
  let request =
    Runner.request ~key:"warm" ~config ~scale:(Runner.Exact 512) workload
  in
  (* Duplicates collapse to one job; re-prewarming is a no-op. *)
  Runner.prewarm ~jobs:2 [ request; request ];
  let a =
    Runner.run_kernel ~key:"warm" ~config ~scale:(Runner.Exact 512) workload
  in
  let b =
    Runner.run_kernel ~key:"other-label" ~config ~scale:(Runner.Exact 512)
      workload
  in
  check bool "run_kernel hits the prewarmed entry" true (a == b);
  Runner.prewarm ~jobs:2 [ request ];
  let c =
    Runner.run_kernel ~key:"warm" ~config ~scale:(Runner.Exact 512) workload
  in
  check bool "re-prewarm keeps the entry" true (a == c);
  Runner.clear_cache ()

let test_runner_domain_safety () =
  (* Concurrent misses on the same request from several domains: every
     caller must come back with the single winning cache entry. *)
  Runner.clear_cache ();
  let workload = Resim_workloads.Workload.find "gzip" in
  let config = Resim_core.Config.reference in
  let run () =
    Runner.run_kernel ~key:"racy" ~config ~scale:(Runner.Exact 256) workload
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn run) in
  let results = Array.map Domain.join domains in
  Array.iter
    (fun result ->
      check bool "all callers share one entry" true (result == results.(0)))
    results;
  check bool "subsequent call hits too" true (run () == results.(0));
  Runner.clear_cache ()

let test_ablation_grid_shape () =
  let requests = Resim_reports.Ablations.requests () in
  check bool "covers the tables and ablations" true
    (List.length requests >= 20);
  (* Workload.all twice (table1 left/right), gzip ablations, and the
     default-scale batch; each request maps to a runnable sweep job. *)
  List.iter
    (fun request ->
      let job = Runner.job_of_request request in
      check bool "label carries the key" true
        (String.length job.Sweep.label > String.length request.Runner.key))
    requests

let suite =
  [ ("sweep:pool",
     [ Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
       Alcotest.test_case "uneven work" `Quick test_pool_map_uneven_work;
       Alcotest.test_case "exceptions propagate" `Quick
         test_pool_exception_propagates;
       Alcotest.test_case "shutdown" `Quick test_pool_submit_after_shutdown;
       Alcotest.test_case "validation" `Quick test_pool_validation ]);
    ("sweep:determinism",
     [ Alcotest.test_case "-j 4 = serial (byte-identical)" `Quick
         test_sweep_parallel_equals_serial;
       Alcotest.test_case "-j 1/4/8 x schedulers (watchdog armed)" `Quick
         test_sweep_high_j_deterministic;
       Alcotest.test_case "telemetry" `Quick test_sweep_telemetry ]);
    ("sweep:runner",
     [ Alcotest.test_case "cache keyed on config" `Quick
         test_runner_keying_sees_config;
       Alcotest.test_case "prewarm seeds cache" `Quick
         test_runner_prewarm_seeds_cache;
       Alcotest.test_case "domain-safe cache" `Quick
         test_runner_domain_safety;
       Alcotest.test_case "ablation grid" `Quick test_ablation_grid_shape ])
  ]
