(* Aggregated test runner: `dune runtest`. *)

let () =
  Alcotest.run "resim"
    (List.concat
       [ Test_isa.suite;
         Test_bpred.suite;
         Test_cache.suite;
         Test_trace.suite;
         Test_fpga.suite;
         Test_core.suite;
         Test_event.suite;
         Test_obs.suite;
         Test_tracegen.suite;
         Test_baseline.suite;
         Test_workloads.suite;
         Test_reports.suite;
         Test_sweep.suite;
         Test_serve.suite;
         Test_check.suite;
         Test_dsafe.suite;
         Test_fault.suite;
         Test_sample.suite;
         Test_spec.suite;
         Test_extensions.suite;
         Test_frontier.suite;
         Test_consistency.suite;
         Test_tools.suite ])
