(* Tests for the tooling layer: the VHDL generator and the pipeline
   tracer. *)

module Record = Resim_trace.Record

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let count_occurrences haystack needle =
  let n = String.length needle in
  let rec loop from acc =
    if from + n > String.length haystack then acc
    else if String.sub haystack from n = needle then loop (from + n) (acc + 1)
    else loop (from + 1) acc
  in
  if n = 0 then 0 else loop 0 0

(* --- VHDL generator ---------------------------------------------------- *)

let balanced_vhdl text =
  (* Every process / entity / architecture must be closed. *)
  count_occurrences text "process (" = count_occurrences text "end process"
  && count_occurrences text "entity " >= 2 (* decl + end *)
  && count_occurrences text "architecture " = 2

let test_vhdl_two_level () =
  let text =
    Resim_vhdlgen.Predictor_gen.direction_predictor
      Resim_bpred.Direction.two_level_default
  in
  check bool "mentions the table sizes" true
    (contains text "array (0 to 3) of unsigned(7 downto 0)"
    && contains text "array (0 to 4095) of unsigned(1 downto 0)");
  check bool "has a training process" true (contains text "process (clk)");
  check bool "balanced" true (balanced_vhdl text)

let test_vhdl_all_direction_configs () =
  List.iter
    (fun config ->
      let text = Resim_vhdlgen.Predictor_gen.direction_predictor config in
      check bool "entity present" true
        (contains text "entity direction_predictor is");
      check bool "architecture closed" true
        (contains text "end architecture rtl;"))
    [ Resim_bpred.Direction.Perfect;
      Resim_bpred.Direction.Static_taken;
      Resim_bpred.Direction.Static_not_taken;
      Resim_bpred.Direction.Bimodal { table_entries = 256 };
      Resim_bpred.Direction.two_level_default;
      Resim_bpred.Direction.Gshare { history_bits = 10; pht_entries = 1024 }
    ]

let test_vhdl_btb_ways () =
  let direct =
    Resim_vhdlgen.Predictor_gen.btb { Resim_bpred.Btb.entries = 512;
                                      associativity = 1 }
  in
  check bool "direct-mapped has one way" true
    (contains direct "tags_0" && not (contains direct "tags_1"));
  let assoc =
    Resim_vhdlgen.Predictor_gen.btb { Resim_bpred.Btb.entries = 512;
                                      associativity = 4 }
  in
  check bool "4-way has four ways" true
    (contains assoc "tags_3" && not (contains assoc "tags_4"));
  check bool "balanced" true (balanced_vhdl assoc)

let test_vhdl_ras_depth () =
  let text = Resim_vhdlgen.Predictor_gen.ras ~depth:16 in
  check bool "depth in array bound" true (contains text "array (0 to 15)");
  check bool "circular arithmetic" true (contains text "mod 16")

let test_vhdl_params_package () =
  let text =
    Resim_vhdlgen.Core_gen.params_package Resim_core.Config.reference
  in
  List.iter
    (fun fragment ->
      check bool fragment true (contains text fragment))
    [ ": integer := 4;"; "ROB_ENTRIES"; "MINOR_CYCLES";
      ": integer := 7;"; "\"optimized\"" ]

let test_vhdl_bundle_files () =
  let dir = Filename.temp_file "resim_vhdl" "" in
  Sys.remove dir;
  let paths =
    Resim_vhdlgen.Core_gen.write_all ~dir Resim_core.Config.reference
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter Sys.remove paths;
      Sys.rmdir dir)
    (fun () ->
      check int "seven files" 7 (List.length paths);
      List.iter
        (fun path ->
          check bool (path ^ " non-empty") true
            ((Unix.stat path).Unix.st_size > 200))
        paths)

let test_vhdl_deterministic () =
  let once () =
    Resim_vhdlgen.Core_gen.generate_all Resim_core.Config.fast_comparable
  in
  check bool "generation is deterministic" true (once () = once ())

let test_vhdl_queue () =
  let text =
    Resim_vhdlgen.Structures_gen.circular_queue ~name:"ifq" ~depth:4
      ~payload_bits:48
  in
  check bool "array bound" true (contains text "array (0 to 3)");
  check bool "payload width" true (contains text "(47 downto 0)");
  check bool "flush port" true (contains text "flush");
  check bool "wraparound" true (contains text "mod 4");
  check bool "balanced" true (balanced_vhdl text)

let test_vhdl_rename_table () =
  let text =
    Resim_vhdlgen.Structures_gen.rename_table ~registers:32 ~rob_entries:16
  in
  check bool "register array" true (contains text "array (0 to 31)");
  check bool "rob tag width" true (contains text "(3 downto 0)");
  check bool "two read ports" true
    (contains text "src1_tag" && contains text "src2_tag");
  check bool "squash flush" true (contains text "valid <= (others => '0');");
  check bool "balanced" true (balanced_vhdl text)

(* --- repo hygiene -------------------------------------------------------- *)

let test_gitignore_excludes_build_artifacts () =
  (* The workspace .gitignore is declared as a test dependency (see
     test/dune), so it is present next to the build tree; keeping
     [_build/] ignored is what stops compiled artifacts from ever being
     committed again. *)
  let path = "../.gitignore" in
  check bool ".gitignore exists" true (Sys.file_exists path);
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  check bool "_build/ is ignored" true (List.mem "_build/" !lines);
  check bool "install files are ignored" true (List.mem "*.install" !lines)

(* --- pipeline tracer ----------------------------------------------------- *)

let alu ?(wrong = false) ~pc ~dest ~src1 () =
  { Record.pc; wrong_path = wrong; dest; src1; src2 = 0;
    payload = Record.Other { op_class = Record.Alu } }

let chain n =
  Array.init n (fun i ->
      alu ~pc:i ~dest:(1 + (i mod 2)) ~src1:(1 + ((i + 1) mod 2)) ())

let find_event kind timeline =
  List.assoc_opt kind timeline.Resim_core.Pipeline_trace.events

let trace_of records ~window =
  let engine = Resim_core.Engine.create records in
  let trace = Resim_core.Pipeline_trace.create ~window engine in
  Resim_core.Pipeline_trace.run trace;
  trace

let test_ptrace_stage_order () =
  let trace = trace_of (chain 8) ~window:8 in
  let lines = Resim_core.Pipeline_trace.timelines trace in
  check int "eight instructions traced" 8 (List.length lines);
  List.iter
    (fun timeline ->
      let cycle kind =
        match find_event kind timeline with
        | Some cycle -> cycle
        | None -> Alcotest.failf "missing stage for #%d"
                    timeline.Resim_core.Pipeline_trace.id
      in
      let fetched = cycle Resim_core.Pipeline_trace.Fetched in
      let dispatched = cycle Resim_core.Pipeline_trace.Dispatched in
      let issued = cycle Resim_core.Pipeline_trace.Issued in
      let completed = cycle Resim_core.Pipeline_trace.Completed in
      let committed = cycle Resim_core.Pipeline_trace.Committed in
      check bool "F < D" true (Int64.compare fetched dispatched < 0);
      check bool "D <= i" true (Int64.compare dispatched issued <= 0);
      check bool "i < W" true (Int64.compare issued completed < 0);
      check bool "W < C" true (Int64.compare completed committed < 0))
    lines

let test_ptrace_serial_chain_issues_in_order () =
  let trace = trace_of (chain 6) ~window:6 in
  let lines = Resim_core.Pipeline_trace.timelines trace in
  let issue_cycles =
    List.filter_map (find_event Resim_core.Pipeline_trace.Issued) lines
  in
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) ->
        Int64.compare a b < 0 && strictly_increasing rest
    | [ _ ] | [] -> true
  in
  check bool "dependent chain issues one per cycle" true
    (strictly_increasing issue_cycles)

let test_ptrace_squash_recorded () =
  let records =
    Array.concat
      [ [| alu ~pc:0 ~dest:1 ~src1:29 ();
           { Record.pc = 1; wrong_path = false; dest = 0; src1 = 1; src2 = 2;
             payload =
               Record.Branch
                 { kind = Resim_isa.Opcode.Cond; taken = true; target = 50 }
           } |];
        Array.init 3 (fun i -> alu ~wrong:true ~pc:(2 + i) ~dest:(3 + i) ~src1:29 ());
        [| alu ~pc:50 ~dest:9 ~src1:29 () |] ]
  in
  let trace = trace_of records ~window:16 in
  let lines = Resim_core.Pipeline_trace.timelines trace in
  let squashed =
    List.filter
      (fun timeline ->
        find_event Resim_core.Pipeline_trace.Squashed timeline <> None)
      lines
  in
  check bool "wrong-path instructions squashed" true
    (List.length squashed > 0);
  List.iter
    (fun timeline ->
      check bool "only wrong-path squashes" true
        timeline.Resim_core.Pipeline_trace.wrong_path)
    squashed;
  let committed_wrong =
    List.exists
      (fun timeline ->
        timeline.Resim_core.Pipeline_trace.wrong_path
        && find_event Resim_core.Pipeline_trace.Committed timeline <> None)
      lines
  in
  check bool "no wrong-path commit in the trace" false committed_wrong

let test_ptrace_render () =
  let trace = trace_of (chain 4) ~window:4 in
  let rendered = Resim_core.Pipeline_trace.render trace in
  check bool "has legend" true (contains rendered "F fetch");
  check bool "has rows" true (contains rendered "#0")

let test_ptrace_window_limits () =
  let trace = trace_of (chain 50) ~window:5 in
  check int "window respected" 5
    (List.length (Resim_core.Pipeline_trace.timelines trace))

let test_ptrace_does_not_change_timing () =
  let records = chain 64 in
  let plain = Resim_core.Engine.simulate records in
  let engine = Resim_core.Engine.create records in
  let trace = Resim_core.Pipeline_trace.create ~window:16 engine in
  Resim_core.Pipeline_trace.run trace;
  check bool "identical timing with tracer attached" true
    (Int64.equal
       (Resim_core.Stats.get Resim_core.Stats.major_cycles plain)
       (Resim_core.Stats.get Resim_core.Stats.major_cycles
          (Resim_core.Engine.stats engine)))

let suite =
  [ ("tools:vhdl",
     [ Alcotest.test_case "two-level tables" `Quick test_vhdl_two_level;
       Alcotest.test_case "all direction configs" `Quick
         test_vhdl_all_direction_configs;
       Alcotest.test_case "btb ways" `Quick test_vhdl_btb_ways;
       Alcotest.test_case "ras depth" `Quick test_vhdl_ras_depth;
       Alcotest.test_case "params package" `Quick test_vhdl_params_package;
       Alcotest.test_case "bundle files" `Quick test_vhdl_bundle_files;
       Alcotest.test_case "deterministic" `Quick test_vhdl_deterministic;
       Alcotest.test_case "circular queue" `Quick test_vhdl_queue;
       Alcotest.test_case "rename table" `Quick test_vhdl_rename_table ]);
    ("tools:hygiene",
     [ Alcotest.test_case "gitignore excludes artifacts" `Quick
         test_gitignore_excludes_build_artifacts ]);
    ("tools:ptrace",
     [ Alcotest.test_case "stage order" `Quick test_ptrace_stage_order;
       Alcotest.test_case "serial chain" `Quick
         test_ptrace_serial_chain_issues_in_order;
       Alcotest.test_case "squash events" `Quick test_ptrace_squash_recorded;
       Alcotest.test_case "render" `Quick test_ptrace_render;
       Alcotest.test_case "window" `Quick test_ptrace_window_limits;
       Alcotest.test_case "timing unchanged" `Quick
         test_ptrace_does_not_change_timing ]) ]
