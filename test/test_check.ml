(* Tests for resim-check: the configuration validator (RSM-C001…C021)
   and the streaming trace linter (RSM-T001…T008). The third layer —
   the hot-path source lint — runs as `dune build @lint`, not here. *)

module Check = Resim_check.Check
module Diagnostic = Resim_check.Check.Diagnostic
module Config = Resim_core.Config
module Cache = Resim_cache.Cache
module Codec = Resim_trace.Codec
module Record = Resim_trace.Record
module Synthetic = Resim_tracegen.Synthetic

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let error_codes diagnostics =
  Diagnostic.codes (Diagnostic.errors diagnostics)

let warning_codes diagnostics =
  Diagnostic.codes (Diagnostic.warnings diagnostics)

let string_list = Alcotest.(list string)

(* --- Config validator: the blessed configurations are clean ---------- *)

let test_reference_clean () =
  check string_list "reference has no findings" []
    (Diagnostic.codes (Check.Config.validate Config.reference));
  check string_list "fast_comparable has no findings" []
    (Diagnostic.codes (Check.Config.validate Config.fast_comparable));
  check bool "reference error summary empty" true
    (Check.Config.error_summary Config.reference = None)

let test_ablation_grid_clean () =
  (* Every configuration the sweep/report runners will ever launch must
     pass the validator — otherwise `resim sweep` would refuse its own
     grid. *)
  List.iter
    (fun (request : Resim_reports.Runner.request) ->
      check string_list
        (Printf.sprintf "grid config %s is clean" request.key)
        []
        (Diagnostic.codes (Check.Config.validate request.config)))
    (Resim_reports.Ablations.requests ())

(* --- Config validator: directed violations --------------------------- *)

let test_optimized_port_budget () =
  (* §IV.B: the optimized organization multiplexes at most N-1 memory
     ports into the minor-cycle schedule. *)
  let too_many = { Config.reference with mem_read_ports = 4 } in
  check bool "C013 fires" true
    (List.mem "RSM-C013" (error_codes (Check.Config.validate too_many)));
  (* The same port count is legal under the improved organization. *)
  let improved =
    { too_many with organization = Config.Improved; scheduler = Config.Scan }
  in
  check string_list "improved organization accepts the ports" []
    (error_codes (Check.Config.validate improved));
  (* Exactly N-1 ports is the boundary and is accepted. *)
  let at_limit =
    { Config.reference with mem_read_ports = 2; mem_write_ports = 1 }
  in
  check string_list "N-1 ports accepted" []
    (error_codes (Check.Config.validate at_limit))

let test_zero_latency_fu () =
  let zero_div = { Config.reference with div_latency = 0 } in
  check bool "C010 fires on zero divide latency" true
    (List.mem "RSM-C010" (error_codes (Check.Config.validate zero_div)));
  let no_alus = { Config.reference with alu_count = 0 } in
  check bool "C009 fires on zero ALUs" true
    (List.mem "RSM-C009" (error_codes (Check.Config.validate no_alus)))

let test_non_power_of_two_cache () =
  let lopsided =
    { Config.reference with
      icache =
        Cache.Set_associative
          { size_bytes = 3000; associativity = 2; block_bytes = 64 } }
  in
  check bool "C017 fires on non-tiling capacity" true
    (List.mem "RSM-C017" (error_codes (Check.Config.validate lopsided)));
  let odd_block =
    { Config.reference with
      dcache =
        Cache.Set_associative
          { size_bytes = 32768; associativity = 8; block_bytes = 48 } }
  in
  check bool "C017 fires on non-power-of-two block" true
    (List.mem "RSM-C017" (error_codes (Check.Config.validate odd_block)));
  let fine =
    { Config.reference with icache = Cache.l1_32k_8way_64b }
  in
  check string_list "a real L1 geometry is clean" []
    (error_codes (Check.Config.validate fine))

let test_lsq_exceeds_rob () =
  let oversized = { Config.reference with lsq_entries = 32 } in
  check bool "C007 fires" true
    (List.mem "RSM-C007" (error_codes (Check.Config.validate oversized)));
  (* The engine's own permissive validate still accepts it — the strict
     rule lives only in resim-check (qcheck configs in test_core rely
     on that). *)
  check bool "engine validate remains permissive" true
    (match Config.validate oversized with Ok _ -> true | Error _ -> false)

let test_warnings_are_not_errors () =
  let free_misses = { Config.reference with misspeculation_penalty = 0 } in
  let diagnostics = Check.Config.validate free_misses in
  check bool "C016 warns on free mispredictions" true
    (List.mem "RSM-C016" (warning_codes diagnostics));
  check string_list "but nothing errors" [] (error_codes diagnostics);
  let fast_divider = { Config.reference with div_latency = 3 } in
  let diagnostics = Check.Config.validate fast_divider in
  check bool "C011 warns on pipelined-looking divider" true
    (List.mem "RSM-C011" (warning_codes diagnostics));
  check string_list "still no errors" [] (error_codes diagnostics)

(* --- Config validator: property over generated clean configs --------- *)

let generated_clean_configs_validate =
  QCheck.Test.make
    ~name:"structurally sound generated configs validate clean" ~count:60
    QCheck.(
      quad (int_range 1 8) (int_range 0 3) (int_range 0 4) (int_range 0 4))
    (fun (width, rob_scale, extra_lsq, misfetch) ->
      let rob = width * (1 + rob_scale) in
      let lsq = min rob (width + extra_lsq) in
      let organization =
        (* Optimized needs the §IV.B port budget: 2 ports fit only when
           width >= 3. *)
        if width >= 3 then Config.Optimized else Config.Improved
      in
      let config =
        { Config.reference with
          width;
          ifq_entries = width;
          decouple_entries = width;
          alu_count = width;
          rob_entries = rob;
          lsq_entries = lsq;
          mem_read_ports = 1;
          mem_write_ports = 1;
          organization;
          misfetch_penalty = misfetch;
          misspeculation_penalty = misfetch + 1 }
      in
      Check.Config.validate config = [])

(* --- Trace linter: clean traces -------------------------------------- *)

let base_records =
  lazy (Synthetic.generate ~seed:11 (Synthetic.balanced ~name:"lint" ~instructions:2500))

let copy_records records = Array.map (fun r -> r) records

let assert_clean name report =
  check bool (name ^ " lints clean") true (Check.Trace.clean report);
  check string_list (name ^ " has no codes") []
    (Diagnostic.codes report.Check.Trace.diagnostics)

let test_clean_kernels () =
  (* Every built-in kernel, unmodified, at its default scale — plus the
     synthetic eighth — produces a trace the linter fully accepts. *)
  let kernels =
    Resim_workloads.Workload.all @ Resim_workloads.Workload.extended
  in
  List.iter
    (fun kernel ->
      let name = Resim_workloads.Workload.name_of kernel in
      let program = Resim_workloads.Workload.program_of kernel () in
      let records = Resim_tracegen.Generator.records program in
      let encoded = Codec.encode ~format:Codec.Fixed records in
      let report = Check.Trace.lint_string encoded in
      assert_clean name report;
      check int (name ^ " checked every record") (Array.length records)
        report.Check.Trace.records_checked)
    kernels;
  let records = Lazy.force base_records in
  List.iter
    (fun format ->
      let report = Check.Trace.lint_string (Codec.encode ~format records) in
      assert_clean "synthetic eighth" report;
      check bool "format detected" true
        (report.Check.Trace.format = Some format))
    [ Codec.Fixed; Codec.Compact ]

let test_report_counts () =
  let records = Lazy.force base_records in
  let report = Check.Trace.lint_records records in
  let wrong =
    Array.fold_left
      (fun acc (r : Record.t) -> if r.wrong_path then acc + 1 else acc)
      0 records
  in
  let blocks = ref 0 in
  Array.iteri
    (fun i (r : Record.t) ->
      if
        r.wrong_path
        && (i = 0 || not records.(i - 1).Record.wrong_path)
      then incr blocks)
    records;
  check int "wrong-path records counted" wrong
    report.Check.Trace.wrong_path_records;
  check int "wrong-path blocks counted" !blocks
    report.Check.Trace.wrong_path_blocks

(* --- Trace linter: one corruption class per test --------------------- *)

let test_flipped_tag_bit () =
  let records = copy_records (Lazy.force base_records) in
  (* Tag a correct-path record whose predecessor is a correct-path
     non-branch: the forged block cannot be following any mispredicted
     branch. *)
  let victim = ref (-1) in
  Array.iteri
    (fun i (r : Record.t) ->
      if !victim < 0 && i > 0 && not r.wrong_path then begin
        let prev = records.(i - 1) in
        if (not prev.Record.wrong_path) && not (Record.is_branch prev) then
          victim := i
      end)
    records;
  check bool "found a victim record" true (!victim >= 0);
  records.(!victim) <- { (records.(!victim)) with Record.wrong_path = true };
  let report = Check.Trace.lint_records records in
  check string_list "exactly RSM-T005 flagged" [ "RSM-T005" ]
    (error_codes report.Check.Trace.diagnostics)

let test_orphan_block_at_start () =
  let records = copy_records (Lazy.force base_records) in
  check bool "trace starts on the correct path" true
    (not records.(0).Record.wrong_path);
  records.(0) <- { (records.(0)) with Record.wrong_path = true };
  let report = Check.Trace.lint_records records in
  check string_list "exactly RSM-T005 flagged" [ "RSM-T005" ]
    (error_codes report.Check.Trace.diagnostics)

let test_truncated_payload () =
  let encoded = Codec.encode ~format:Codec.Fixed (Lazy.force base_records) in
  let truncated = String.sub encoded 0 (String.length encoded - 4) in
  let report = Check.Trace.lint_string truncated in
  check string_list "exactly RSM-T002 flagged" [ "RSM-T002" ]
    (error_codes report.Check.Trace.diagnostics);
  check bool "stopped before the declared count" true
    (report.Check.Trace.records_checked
    < Array.length (Lazy.force base_records))

let test_malformed_header () =
  let encoded = Codec.encode ~format:Codec.Fixed (Lazy.force base_records) in
  let bad_magic =
    "X" ^ String.sub encoded 1 (String.length encoded - 1)
  in
  let report = Check.Trace.lint_string bad_magic in
  check string_list "exactly RSM-T001 flagged" [ "RSM-T001" ]
    (error_codes report.Check.Trace.diagnostics);
  check bool "format unknown" true (report.Check.Trace.format = None);
  check int "nothing decoded" 0 report.Check.Trace.records_checked

let test_undecodable_record () =
  (* Keep the 14-byte header (which declares thousands of records) but
     replace the payload with all-ones: the first record's 2-bit type
     code reads 3, which no format defines. *)
  let encoded = Codec.encode ~format:Codec.Fixed (Lazy.force base_records) in
  let forged = String.sub encoded 0 14 ^ String.make 64 '\xff' in
  let report = Check.Trace.lint_string forged in
  check string_list "exactly RSM-T003 flagged" [ "RSM-T003" ]
    (error_codes report.Check.Trace.diagnostics)

let test_wrong_path_run_bound () =
  let records = Lazy.force base_records in
  (* The generator's blocks run up to ROB + IFQ records, far above 4. *)
  let strict = Check.Trace.lint_records ~max_wrong_path_run:4 records in
  check bool "RSM-T007 fires under a tiny bound" true
    (List.mem "RSM-T007" (error_codes strict.Check.Trace.diagnostics));
  assert_clean "default bound" (Check.Trace.lint_records records)

let other_record ~pc =
  { Record.pc;
    wrong_path = false;
    dest = 0;
    src1 = 0;
    src2 = 0;
    payload = Record.Other { op_class = Record.Alu } }

let test_payload_consistency () =
  let untaken_jump =
    { (other_record ~pc:1) with
      Record.payload =
        Record.Branch
          { kind = Resim_isa.Opcode.Jump; taken = false; target = 2 } }
  in
  let report =
    Check.Trace.lint_records [| other_record ~pc:0; untaken_jump |]
  in
  check string_list "untaken unconditional is RSM-T008" [ "RSM-T008" ]
    (error_codes report.Check.Trace.diagnostics);
  let wild_register = { (other_record ~pc:0) with Record.dest = 40 } in
  let report = Check.Trace.lint_records [| wild_register |] in
  check string_list "out-of-range register is RSM-T008" [ "RSM-T008" ]
    (error_codes report.Check.Trace.diagnostics)

let test_block_after_unconditional_warns () =
  let jump =
    { (other_record ~pc:0) with
      Record.payload =
        Record.Branch
          { kind = Resim_isa.Opcode.Jump; taken = true; target = 5 } }
  in
  let tagged = { (other_record ~pc:5) with Record.wrong_path = true } in
  let report = Check.Trace.lint_records [| jump; tagged |] in
  check string_list "RSM-T006 warns" [ "RSM-T006" ]
    (warning_codes report.Check.Trace.diagnostics);
  check string_list "no errors" []
    (error_codes report.Check.Trace.diagnostics)

let test_trailing_bytes_warn () =
  let encoded = Codec.encode ~format:Codec.Fixed (Lazy.force base_records) in
  let padded = encoded ^ String.make 3 '\x00' in
  let report = Check.Trace.lint_string padded in
  check string_list "RSM-T004 warns" [ "RSM-T004" ]
    (warning_codes report.Check.Trace.diagnostics);
  check string_list "no errors" []
    (error_codes report.Check.Trace.diagnostics);
  check bool "not clean" false (Check.Trace.clean report)

(* --- Diagnostics ------------------------------------------------------ *)

let contains ~needle haystack =
  let n = String.length haystack and m = String.length needle in
  let rec scan i =
    i + m <= n && (String.sub haystack i m = needle || scan (i + 1))
  in
  scan 0

let test_diagnostic_rendering () =
  let diagnostic =
    Diagnostic.error ~code:"RSM-C013" ~subject:"mem_read_ports"
      ~hint:"reduce the ports" "too many ports"
  in
  let rendered = Diagnostic.to_string diagnostic in
  List.iter
    (fun fragment ->
      check bool (Printf.sprintf "rendering contains %S" fragment) true
        (contains ~needle:fragment rendered))
    [ "RSM-C013"; "mem_read_ports"; "too many ports"; "reduce the ports" ]

let suite =
  [ ( "check:config",
      [ Alcotest.test_case "blessed configs are clean" `Quick
          test_reference_clean;
        Alcotest.test_case "ablation grid is clean" `Quick
          test_ablation_grid_clean;
        Alcotest.test_case "optimized port budget (C013)" `Quick
          test_optimized_port_budget;
        Alcotest.test_case "degenerate functional units (C009/C010)"
          `Quick test_zero_latency_fu;
        Alcotest.test_case "cache geometry (C017)" `Quick
          test_non_power_of_two_cache;
        Alcotest.test_case "LSQ exceeding ROB (C007)" `Quick
          test_lsq_exceeds_rob;
        Alcotest.test_case "warnings never block" `Quick
          test_warnings_are_not_errors;
        QCheck_alcotest.to_alcotest generated_clean_configs_validate ] );
    ( "check:trace",
      [ Alcotest.test_case "clean kernels lint clean" `Slow
          test_clean_kernels;
        Alcotest.test_case "report statistics" `Quick test_report_counts;
        Alcotest.test_case "flipped tag bit (T005)" `Quick
          test_flipped_tag_bit;
        Alcotest.test_case "orphan block at start (T005)" `Quick
          test_orphan_block_at_start;
        Alcotest.test_case "truncated payload (T002)" `Quick
          test_truncated_payload;
        Alcotest.test_case "malformed header (T001)" `Quick
          test_malformed_header;
        Alcotest.test_case "undecodable record (T003)" `Quick
          test_undecodable_record;
        Alcotest.test_case "wrong-path run bound (T007)" `Quick
          test_wrong_path_run_bound;
        Alcotest.test_case "payload consistency (T008)" `Quick
          test_payload_consistency;
        Alcotest.test_case "block after unconditional (T006)" `Quick
          test_block_after_unconditional_warns;
        Alcotest.test_case "trailing bytes (T004)" `Quick
          test_trailing_bytes_warn;
        Alcotest.test_case "diagnostic rendering" `Quick
          test_diagnostic_rendering ] ) ]
