(** Two-level cache hierarchy.

    ReSim's paper models flat L1s (hit/miss plus a fixed miss latency);
    this extension interposes an optional second level: an L1 miss costs
    the L1 hit latency plus a full access to the next level, whose own
    timing covers the memory round trip. The L2 is passed in as a
    component so one L2 instance can be *shared* between the instruction
    and data paths, as in a real unified L2. *)

type t

val create :
  ?timing:Cache.timing -> Cache.config -> l2:Cache.t option -> t
(** [create l1_config ~l2]: the L1 is built here; when [l2] is [Some _],
    the L1's configured miss latency is superseded by the L2 access. *)

val access : t -> addr:int -> write:bool -> int
(** Total latency in major cycles. *)

val l1 : t -> Cache.t
val l2 : t -> Cache.t option

val l1_stats : t -> Cache.stats
