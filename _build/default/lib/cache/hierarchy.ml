type t = { l1 : Cache.t; l2 : Cache.t option }

let create ?timing l1_config ~l2 =
  { l1 = Cache.create ?timing l1_config; l2 }

let access t ~addr ~write =
  let l1_latency = Cache.access t.l1 ~addr ~write in
  let hit = (Cache.timing t.l1).hit_latency in
  if l1_latency <= hit then l1_latency
  else
    match t.l2 with
    | None -> l1_latency
    | Some l2 -> hit + Cache.access l2 ~addr ~write

let l1 t = t.l1
let l2 t = t.l2
let l1_stats t = Cache.stats t.l1
