type geometry = {
  size_bytes : int;
  associativity : int;
  block_bytes : int;
}

type config = Perfect | Set_associative of geometry

type timing = { hit_latency : int; miss_latency : int }

let default_timing = { hit_latency = 1; miss_latency = 18 }

let l1_32k_8way_64b =
  Set_associative
    { size_bytes = 32 * 1024; associativity = 8; block_bytes = 64 }

let l1_32k_2way_64b =
  Set_associative
    { size_bytes = 32 * 1024; associativity = 2; block_bytes = 64 }

type way = { mutable tag : int; mutable stamp : int }
(* tag = -1 marks an invalid way. *)

type state =
  | S_perfect
  | S_sets of { sets : way array array; block_bits : int; set_count : int }

type stats = {
  accesses : int64;
  hits : int64;
  misses : int64;
  evictions : int64;
}

type t = {
  config : config;
  timing : timing;
  state : state;
  mutable clock : int;
  mutable accesses : int64;
  mutable hits : int64;
  mutable misses : int64;
  mutable evictions : int64;
}

let log2_exact name n =
  let rec loop value bits =
    if value = 1 then bits
    else if value land 1 <> 0 || value <= 0 then
      invalid_arg (Printf.sprintf "Cache.create: %s must be a power of two" name)
    else loop (value lsr 1) (bits + 1)
  in
  loop n 0

let create ?(timing = default_timing) config =
  let state =
    match config with
    | Perfect -> S_perfect
    | Set_associative { size_bytes; associativity; block_bytes } ->
        if associativity <= 0 then
          invalid_arg "Cache.create: associativity must be positive";
        let block_bits = log2_exact "block_bytes" block_bytes in
        let set_count = size_bytes / (associativity * block_bytes) in
        if set_count <= 0 then
          invalid_arg "Cache.create: capacity too small for the geometry";
        let sets =
          Array.init set_count (fun _ ->
              Array.init associativity (fun _ -> { tag = -1; stamp = 0 }))
        in
        S_sets { sets; block_bits; set_count }
  in
  { config; timing; state;
    clock = 0; accesses = 0L; hits = 0L; misses = 0L; evictions = 0L }

let config t = t.config
let timing t = t.timing

let locate ~block_bits ~set_count addr =
  let block = addr lsr block_bits in
  (block mod set_count, block / set_count)

let find_way set tag =
  let rec scan i =
    if i >= Array.length set then None
    else if set.(i).tag = tag then Some i
    else scan (i + 1)
  in
  scan 0

let victim_way set =
  let best = ref 0 in
  for i = 1 to Array.length set - 1 do
    if set.(i).tag = -1 && set.(!best).tag <> -1 then best := i
    else if
      set.(i).tag <> -1 && set.(!best).tag <> -1
      && set.(i).stamp < set.(!best).stamp
    then best := i
  done;
  !best

let access t ~addr ~write =
  ignore write;
  t.accesses <- Int64.add t.accesses 1L;
  t.clock <- t.clock + 1;
  match t.state with
  | S_perfect ->
      t.hits <- Int64.add t.hits 1L;
      t.timing.hit_latency
  | S_sets { sets; block_bits; set_count } -> (
      let index, tag = locate ~block_bits ~set_count addr in
      let set = sets.(index) in
      match find_way set tag with
      | Some way ->
          set.(way).stamp <- t.clock;
          t.hits <- Int64.add t.hits 1L;
          t.timing.hit_latency
      | None ->
          t.misses <- Int64.add t.misses 1L;
          let way = victim_way set in
          if set.(way).tag <> -1 then
            t.evictions <- Int64.add t.evictions 1L;
          set.(way).tag <- tag;
          set.(way).stamp <- t.clock;
          t.timing.hit_latency + t.timing.miss_latency)

let probe t ~addr =
  match t.state with
  | S_perfect -> true
  | S_sets { sets; block_bits; set_count } ->
      let index, tag = locate ~block_bits ~set_count addr in
      find_way sets.(index) tag <> None

let stats t =
  { accesses = t.accesses; hits = t.hits; misses = t.misses;
    evictions = t.evictions }

let reset_stats t =
  t.accesses <- 0L;
  t.hits <- 0L;
  t.misses <- 0L;
  t.evictions <- 0L

let miss_rate t =
  if Int64.equal t.accesses 0L then 0.0
  else Int64.to_float t.misses /. Int64.to_float t.accesses

let pp_stats ppf t =
  Format.fprintf ppf "accesses=%Ld hits=%Ld misses=%Ld (%.2f%% miss)"
    t.accesses t.hits t.misses (100.0 *. miss_rate t)
