lib/cache/cache.ml: Array Format Int64 Printf
