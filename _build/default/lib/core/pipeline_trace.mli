(** Per-instruction pipeline event tracing — the sim-outorder
    `ptrace` analog.

    Wraps an engine and records, for a window of instruction ids, the
    major cycle at which each instruction passed fetch, dispatch, issue,
    writeback and commit (or was squashed), then renders the classic
    Gantt view:

    {v
    id    pc      |0         1         2
    #0    0       |F.DiWC
    #1    1       | F.DiWC
    #4    5       |  F.Di....WC
    v}

    Tracing attaches through {!Engine.set_observer}, so the engine's
    timing is untouched. *)

type event_kind = Fetched | Dispatched | Issued | Completed | Committed | Squashed

type timeline = {
  id : int;               (** ROB sequence id *)
  pc : int;
  wrong_path : bool;
  events : (event_kind * int64) list;  (** cycle of each stage, in order *)
}

type t

val create : ?window:int -> Engine.t -> t
(** Trace the first [window] (default 64) instructions dispatched. *)

val step : t -> unit
(** Advance the engine one major cycle and record events. *)

val run : ?max_cycles:int64 -> t -> unit

val timelines : t -> timeline list
(** Completed view, ordered by id. *)

val render : t -> string
(** ASCII Gantt chart of the traced window. *)
