module Trace = Resim_trace
module Bpred = Resim_bpred
module Cache = Resim_cache.Cache
module Hierarchy = Resim_cache.Hierarchy

exception Deadlock of string

(* Observable pipeline events, for tracing tools (Pipeline_trace). *)
type event =
  | Ev_fetch of Trace.Record.t
  | Ev_dispatch of Entry.t
  | Ev_issue of Entry.t
  | Ev_complete of Entry.t
  | Ev_commit of Entry.t
  | Ev_squash of Entry.t
  | Ev_flush_frontend

type fetch_mode =
  | Normal
  | Wrong_path           (* consuming a tagged block *)
  | Awaiting_resolution  (* tagged block over; hold until the squash *)

(* A fetched record on its way to dispatch, carrying the fetch-time
   decisions that belong to the eventual ROB entry. *)
type fetched = {
  record : Trace.Record.t;
  squash_at_commit : bool;
  ras_repair : Bpred.Ras.t option;
}

type t = {
  config : Config.t;
  source : Source.t;
  mutable cursor : int;
  ifq : fetched Ring.t;
  decouple : fetched Ring.t;
  rob : Rob.t;
  lsq : Lsq.t;
  rename : Rename.t;
  fu : Fu.t;
  predictor : Bpred.Predictor.t;
  icache : Hierarchy.t;
  dcache : Hierarchy.t;
  l2cache : Cache.t option;
  stats : Stats.t;
  mutable cycle : int64;
  mutable fetch_stall : int;
  mutable fetch_mode : fetch_mode;
  mutable last_fetch_block : int;
  mutable observer : (event -> unit) option;
}

let create_from_source ?(config = Config.reference) source =
  let config =
    match Config.validate config with
    | Ok config -> config
    | Error message -> invalid_arg ("Engine.create: " ^ message)
  in
  let shared_l2 =
    Option.map
      (fun l2_config -> Cache.create ~timing:config.l2_timing l2_config)
      config.l2cache
  in
  { config;
    source;
    cursor = 0;
    ifq = Ring.create ~capacity:config.ifq_entries;
    decouple = Ring.create ~capacity:config.decouple_entries;
    rob = Rob.create ~entries:config.rob_entries;
    lsq = Lsq.create ~entries:config.lsq_entries;
    rename = Rename.create ~registers:Resim_isa.Reg.count;
    fu = Fu.create config;
    predictor = Bpred.Predictor.create config.predictor;
    icache =
      Hierarchy.create ~timing:config.cache_timing config.icache ~l2:shared_l2;
    dcache =
      Hierarchy.create ~timing:config.cache_timing config.dcache ~l2:shared_l2;
    l2cache = shared_l2;
    stats = Stats.create ();
    cycle = 0L;
    fetch_stall = 0;
    fetch_mode = Normal;
    last_fetch_block = -1;
    observer = None }

let create ?config trace = create_from_source ?config (Source.of_array trace)

let config t = t.config
let stats t = t.stats
let icache t = Hierarchy.l1 t.icache
let dcache t = Hierarchy.l1 t.dcache
let l2cache t = t.l2cache
let predictor t = t.predictor
let cycle t = t.cycle

let minor_cycles t =
  Int64.mul t.cycle (Int64.of_int (Config.minor_cycle_latency t.config))

let set_observer t observer = t.observer <- Some observer

let notify t event =
  match t.observer with
  | Some observer -> observer event
  | None -> ()

let record_at t index = Source.at t.source index

let finished t =
  record_at t t.cursor = None
  && Ring.is_empty t.ifq && Ring.is_empty t.decouple && Rob.is_empty t.rob

(* ------------------------------------------------------------------ *)
(* Squash: branch resolution at commit flushes everything younger.     *)

let squash t (branch : Entry.t) =
  if t.observer <> None then begin
    Rob.iter
      (fun (entry : Entry.t) ->
        if entry.id > branch.id then notify t (Ev_squash entry))
      t.rob;
    notify t Ev_flush_frontend
  end;
  ignore (Rob.squash_younger t.rob ~than_id:branch.id);
  ignore (Lsq.squash_younger t.lsq ~than_id:branch.id);
  Ring.clear t.ifq;
  Ring.clear t.decouple;
  Rename.reset t.rename;
  Fu.flush t.fu;
  (match branch.ras_repair with
  | Some saved -> Bpred.Predictor.ras_restore t.predictor saved
  | None -> ());
  (* Tagged records never fetched are discarded at the resolution
     point. *)
  let rec skip_tagged () =
    match record_at t t.cursor with
    | Some record when record.Trace.Record.wrong_path ->
        t.cursor <- t.cursor + 1;
        Stats.incr t.stats Stats.discarded_wrong_path;
        skip_tagged ()
    | Some _ | None -> ()
  in
  skip_tagged ();
  t.fetch_mode <- Normal;
  t.fetch_stall <- max t.fetch_stall t.config.misspeculation_penalty;
  t.last_fetch_block <- -1

(* ------------------------------------------------------------------ *)
(* Commit: in-order, up to N per cycle; stores need a write port; the
   completed result must be from an earlier cycle (the paper's flag).   *)

let commit_phase t =
  let committed = ref 0 in
  let blocked = ref false in
  let write_ports_used = ref 0 in
  while (not !blocked) && !committed < t.config.width do
    match Rob.head t.rob with
    | None -> blocked := true
    | Some entry ->
        if entry.state <> Entry.Completed
           || Int64.compare entry.completed_cycle t.cycle >= 0
        then blocked := true
        else if Entry.is_wrong_path entry then
          failwith "Engine: wrong-path instruction reached commit"
        else begin
          let entry_commits =
            if Entry.is_store entry then begin
              if !write_ports_used >= t.config.mem_write_ports then begin
                Stats.incr t.stats Stats.write_port_stalls;
                blocked := true;
                false
              end
              else begin
                incr write_ports_used;
                (match entry.record.payload with
                | Trace.Record.Memory { address; _ } ->
                    ignore (Hierarchy.access t.dcache ~addr:address ~write:true)
                | Trace.Record.Branch _ | Trace.Record.Other _ -> ());
                true
              end
            end
            else true
          in
          if entry_commits then begin
            ignore (Rob.pop_head t.rob);
            if Trace.Record.is_memory entry.record then
              Lsq.release_head t.lsq entry;
            notify t (Ev_commit entry);
            Stats.incr t.stats Stats.committed;
            incr committed;
            (match entry.record.payload with
            | Trace.Record.Branch { kind; taken; target } ->
                Stats.incr t.stats Stats.committed_branches;
                if kind = Cond then
                  Stats.incr t.stats Stats.committed_cond_branches;
                Bpred.Predictor.update t.predictor ~pc:entry.record.pc ~kind
                  ~taken ~target;
                Bpred.Predictor.record_resolution t.predictor
                  ~correct:(not entry.squash_on_commit);
                if entry.squash_on_commit then begin
                  Stats.incr t.stats Stats.mispredictions;
                  squash t entry;
                  blocked := true
                end
            | Trace.Record.Memory { is_load; _ } ->
                if is_load then begin
                  Stats.incr t.stats Stats.committed_loads;
                  if entry.forwarded then
                    Stats.incr t.stats Stats.forwarded_loads
                end
                else Stats.incr t.stats Stats.committed_stores
            | Trace.Record.Other { op_class = Trace.Record.Mult }
            | Trace.Record.Other { op_class = Trace.Record.Divide } ->
                Stats.incr t.stats Stats.committed_mult_div
            | Trace.Record.Other { op_class = Trace.Record.Alu } -> ())
          end
        end
  done;
  Stats.observe_commit_width t.stats !committed

(* ------------------------------------------------------------------ *)
(* Writeback: the oldest completed executions broadcast and wake their
   dependents; same-cycle issue of woken instructions is legal.         *)

let wakeup t (producer : Entry.t) =
  Rob.iter
    (fun (dependent : Entry.t) ->
      if dependent.src1_producer = Some producer.id then
        dependent.src1_producer <- None;
      if dependent.src2_producer = Some producer.id then
        dependent.src2_producer <- None)
    t.rob;
  let dest = producer.record.Trace.Record.dest in
  if dest > 0 then Rename.clear t.rename ~reg:dest ~id:producer.id

let writeback_phase t =
  let broadcast = ref 0 in
  (* Oldest-first scan; at most N broadcasts per major cycle. *)
  (try
     Rob.iter
       (fun (entry : Entry.t) ->
         if !broadcast >= t.config.width then raise Exit;
         if entry.state = Entry.Issued
            && Int64.compare entry.complete_at t.cycle <= 0
         then begin
           entry.state <- Entry.Completed;
           entry.completed_cycle <- t.cycle;
           notify t (Ev_complete entry);
           wakeup t entry;
           incr broadcast
         end)
       t.rob
   with Exit -> ())

(* ------------------------------------------------------------------ *)
(* Issue: schedule ready instructions onto units, oldest first.         *)

type issue_verdict = Issued_with of int | No_unit | Not_ready

let try_issue t ~reads_used (entry : Entry.t) =
  match entry.record.payload with
  | Trace.Record.Other { op_class } ->
      if not (Entry.sources_ready entry) then Not_ready
      else begin
        let request =
          match op_class with
          | Trace.Record.Alu -> Fu.Alu
          | Trace.Record.Mult -> Fu.Mult
          | Trace.Record.Divide -> Fu.Div
        in
        match Fu.try_allocate t.fu request ~now:t.cycle with
        | Some latency -> Issued_with latency
        | None -> No_unit
      end
  | Trace.Record.Branch _ ->
      if not (Entry.sources_ready entry) then Not_ready
      else begin
        match Fu.try_allocate t.fu Fu.Alu ~now:t.cycle with
        | Some latency -> Issued_with latency
        | None -> No_unit
      end
  | Trace.Record.Memory { is_load = false; _ } ->
      (* Store: address generation on an ALU; memory write at commit. *)
      if not (Entry.sources_ready entry) then Not_ready
      else begin
        match Fu.try_allocate t.fu Fu.Alu ~now:t.cycle with
        | Some _ -> Issued_with 1
        | None -> No_unit
      end
  | Trace.Record.Memory { is_load = true; address } -> (
      match entry.load_readiness with
      | Entry.Load_not_checked | Entry.Load_blocked -> Not_ready
      | Entry.Load_forward -> (
          match Fu.try_allocate t.fu Fu.Alu ~now:t.cycle with
          | Some _ ->
              entry.forwarded <- true;
              Issued_with 1
          | None -> No_unit)
      | Entry.Load_needs_port ->
          if !reads_used >= t.config.mem_read_ports then begin
            Stats.incr t.stats Stats.read_port_stalls;
            No_unit
          end
          else begin
            match Fu.try_allocate t.fu Fu.Alu ~now:t.cycle with
            | Some _ ->
                incr reads_used;
                let access = Hierarchy.access t.dcache ~addr:address ~write:false in
                Issued_with (1 + access)
            | None -> No_unit
          end)

let issue_entry t entry ~latency =
  entry.Entry.state <- Entry.Issued;
  entry.Entry.complete_at <- Int64.add t.cycle (Int64.of_int latency);
  notify t (Ev_issue entry);
  Stats.incr t.stats Stats.issued

let issue_phase t =
  Fu.begin_cycle t.fu;
  let slots_used = ref 0 in
  let reads_used = ref 0 in
  let width = t.config.width in
  (* The optimized organization bars loads from the first issue slot
     (§IV.B): give slot 1 to the oldest ready non-load, if any. *)
  if t.config.organization = Config.Optimized then begin
    try
      Rob.iter
        (fun (entry : Entry.t) ->
          if entry.state = Entry.Dispatched && not (Entry.is_load entry)
          then begin
            match try_issue t ~reads_used entry with
            | Issued_with latency ->
                issue_entry t entry ~latency;
                incr slots_used;
                raise Exit
            | No_unit | Not_ready -> ()
          end)
        t.rob
    with Exit -> ()
  end;
  (try
     Rob.iter
       (fun (entry : Entry.t) ->
         if !slots_used >= width then raise Exit;
         if entry.state = Entry.Dispatched then begin
           match try_issue t ~reads_used entry with
           | Issued_with latency ->
               issue_entry t entry ~latency;
               incr slots_used
           | No_unit | Not_ready -> ()
         end)
       t.rob
   with Exit -> ());
  Stats.observe_issue_width t.stats !slots_used

(* ------------------------------------------------------------------ *)
(* Dispatch: decouple buffer -> ROB (+ LSQ), with renaming.             *)

let dispatch_phase t =
  let count = ref 0 in
  let blocked = ref false in
  while (not !blocked) && !count < t.config.width do
    match Ring.peek t.decouple with
    | None -> blocked := true
    | Some fetched ->
        if Rob.is_full t.rob then begin
          Stats.incr t.stats Stats.rob_full_stalls;
          blocked := true
        end
        else if
          Trace.Record.is_memory fetched.record && Lsq.is_full t.lsq
        then begin
          Stats.incr t.stats Stats.lsq_full_stalls;
          blocked := true
        end
        else begin
          ignore (Ring.pop t.decouple);
          let entry = Rob.dispatch t.rob fetched.record in
          entry.squash_on_commit <- fetched.squash_at_commit;
          entry.ras_repair <- fetched.ras_repair;
          entry.src1_producer <-
            Rename.producer t.rename fetched.record.src1;
          entry.src2_producer <-
            Rename.producer t.rename fetched.record.src2;
          if fetched.record.dest > 0 then
            Rename.define t.rename ~reg:fetched.record.dest ~id:entry.id;
          if Trace.Record.is_memory fetched.record then
            Lsq.dispatch t.lsq entry;
          notify t (Ev_dispatch entry);
          Stats.incr t.stats Stats.dispatched;
          incr count
        end
  done

(* Decouple: IFQ -> decouple buffer, up to N per cycle. *)
let decouple_phase t =
  let moved = ref 0 in
  while
    !moved < t.config.width
    && (not (Ring.is_empty t.ifq))
    && not (Ring.is_full t.decouple)
  do
    match Ring.pop t.ifq with
    | Some fetched ->
        Ring.push t.decouple fetched;
        incr moved
    | None -> ()
  done

(* ------------------------------------------------------------------ *)
(* Fetch.                                                              *)

let icache_block_bytes t =
  match Cache.config (Hierarchy.l1 t.icache) with
  | Cache.Perfect -> 64
  | Cache.Set_associative { block_bytes; _ } -> block_bytes

(* Fetch-time handling of a control-flow record: consult the branch
   predictor unit (misfetch detection, RAS effects, statistics) and
   detect generator mispredictions from the trace structure. Returns
   the fetched-record annotations and whether the front end follows a
   taken target (ending the fetch group). *)
let fetch_control t (record : Trace.Record.t) ~kind ~taken ~target =
  let next_record = record_at t t.cursor in
  let next_is_tagged =
    (not record.wrong_path)
    && (match next_record with
       | Some next -> next.Trace.Record.wrong_path
       | None -> false)
  in
  let effective_taken =
    if next_is_tagged then
      match (kind : Resim_isa.Opcode.branch_kind) with
      | Cond -> not taken
      | Jump | Call | Ret | Indirect -> true
    else taken
  in
  let prediction =
    Bpred.Predictor.predict t.predictor ~pc:record.pc ~kind
      ~fallthrough:(record.pc + 1) ~actual_taken:taken ~actual_target:target
  in
  (* Misfetch: the front end follows a taken path but cannot supply the
     right target PC this cycle (§III). The needed target is the next
     record to fetch. *)
  let next_same_path =
    match next_record with
    | Some next ->
        next.Trace.Record.wrong_path = record.wrong_path || next_is_tagged
    | None -> false
  in
  (match next_record with
   | Some next when effective_taken && next_same_path ->
    let needed = next.Trace.Record.pc in
    let misfetch =
      match prediction.target with
      | Some supplied -> supplied <> needed
      | None -> true
    in
    if misfetch then begin
      Stats.incr t.stats Stats.misfetches;
      t.fetch_stall <- max t.fetch_stall t.config.misfetch_penalty
    end
   | Some _ | None -> ());
  let ras_repair =
    if next_is_tagged then Some (Bpred.Predictor.ras_snapshot t.predictor)
    else None
  in
  if next_is_tagged then t.fetch_mode <- Wrong_path;
  ({ record; squash_at_commit = next_is_tagged; ras_repair }, effective_taken)

let fetch_phase t =
  if t.fetch_stall > 0 then begin
    t.fetch_stall <- t.fetch_stall - 1;
    Stats.incr t.stats Stats.fetch_penalty_cycles
  end
  else begin
    Source.release_below t.source t.cursor;
    let fetched_count = ref 0 in
    let stop = ref false in
    while
      (not !stop) && !fetched_count < t.config.width
      && not (Ring.is_full t.ifq)
    do
      match record_at t t.cursor with
      | None -> stop := true
      | Some record ->
      (match t.fetch_mode with
      | Awaiting_resolution -> stop := true
      | Wrong_path when not record.wrong_path ->
          t.fetch_mode <- Awaiting_resolution;
          stop := true
      | Normal when record.wrong_path ->
          (* A tagged record with no pending misprediction (malformed or
             pre-truncated trace): discard it, as resolution would. *)
          t.cursor <- t.cursor + 1;
          Stats.incr t.stats Stats.discarded_wrong_path
      | Normal | Wrong_path ->
          (* Instruction cache, one access per new block. *)
          let byte_addr = Resim_isa.Instruction.byte_address record.pc in
          let block = byte_addr / icache_block_bytes t in
          let stalled_on_icache =
            if block = t.last_fetch_block then false
            else begin
              let latency =
                Hierarchy.access t.icache ~addr:byte_addr ~write:false
              in
              t.last_fetch_block <- block;
              let extra =
                latency - (Cache.timing (Hierarchy.l1 t.icache)).hit_latency
              in
              if extra > 0 then begin
                t.fetch_stall <- extra;
                Stats.add t.stats Stats.icache_stall_cycles (Int64.of_int extra);
                true
              end
              else false
            end
          in
          if stalled_on_icache then stop := true
          else begin
            t.cursor <- t.cursor + 1;
            Stats.incr t.stats Stats.fetched;
            if record.wrong_path then
              Stats.incr t.stats Stats.fetched_wrong_path;
            let fetched, taken =
              match record.payload with
              | Trace.Record.Branch { kind; taken; target } ->
                  fetch_control t record ~kind ~taken ~target
              | Trace.Record.Memory _ | Trace.Record.Other _ ->
                  ( { record; squash_at_commit = false; ras_repair = None },
                    false )
            in
            Ring.push t.ifq fetched;
            notify t (Ev_fetch record);
            incr fetched_count;
            (* Fetch until a control-flow bubble (§III). *)
            if taken then stop := true
          end)
    done
  end

(* ------------------------------------------------------------------ *)

let step t =
  if not (finished t) then begin
    commit_phase t;
    writeback_phase t;
    Lsq.refresh t.lsq;
    issue_phase t;
    dispatch_phase t;
    decouple_phase t;
    fetch_phase t;
    Stats.sample_occupancy t.stats ~ifq:(Ring.length t.ifq)
      ~rob:(Rob.length t.rob) ~lsq:(Lsq.length t.lsq);
    t.cycle <- Int64.add t.cycle 1L;
    Stats.incr t.stats Stats.major_cycles
  end

let progress_signature t =
  (t.cursor, Stats.get Stats.committed t.stats, Rob.length t.rob)

let run ?(max_cycles = 1_000_000_000L) t =
  let last_progress = ref (progress_signature t) in
  let stuck_for = ref 0 in
  while not (finished t) do
    if Int64.compare t.cycle max_cycles >= 0 then
      raise
        (Deadlock (Printf.sprintf "exceeded max_cycles at cursor %d" t.cursor));
    step t;
    let now = progress_signature t in
    if now = !last_progress then begin
      incr stuck_for;
      if !stuck_for > 100_000 then
        raise
          (Deadlock
             (Printf.sprintf
                "no progress for %d cycles (cursor %d, rob %d, mode %s)"
                !stuck_for t.cursor (Rob.length t.rob)
                (match t.fetch_mode with
                | Normal -> "normal"
                | Wrong_path -> "wrong-path"
                | Awaiting_resolution -> "awaiting")))
    end
    else begin
      stuck_for := 0;
      last_progress := now
    end
  done;
  t.stats

let simulate ?config trace = run (create ?config trace)
