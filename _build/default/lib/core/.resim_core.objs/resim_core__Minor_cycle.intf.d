lib/core/minor_cycle.mli: Config
