lib/core/resim.mli: Config Format Resim_cache Resim_fpga Resim_isa Resim_trace Resim_tracegen Stats
