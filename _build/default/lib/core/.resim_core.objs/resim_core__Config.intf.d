lib/core/config.mli: Format Resim_bpred Resim_cache
