lib/core/stats.ml: Format Histogram Int64
