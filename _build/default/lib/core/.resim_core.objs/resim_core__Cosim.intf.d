lib/core/cosim.mli: Config Resim_isa Resim_tracegen Stats
