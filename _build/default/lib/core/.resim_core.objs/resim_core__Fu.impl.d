lib/core/fu.ml: Array Config Int64
