lib/core/entry.ml: Format Int64 Resim_bpred Resim_trace
