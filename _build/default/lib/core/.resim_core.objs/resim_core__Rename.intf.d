lib/core/rename.mli:
