lib/core/rename.ml: Array
