lib/core/config.ml: Format Printf Resim_bpred Resim_cache
