lib/core/ring.ml: Array List
