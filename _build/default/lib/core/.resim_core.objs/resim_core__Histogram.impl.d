lib/core/histogram.ml: Array Format Int64
