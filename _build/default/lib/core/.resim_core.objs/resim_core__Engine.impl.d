lib/core/engine.ml: Config Entry Fu Int64 Lsq Option Printf Rename Resim_bpred Resim_cache Resim_isa Resim_trace Ring Rob Source Stats
