lib/core/rob.mli: Entry Resim_trace
