lib/core/fu.mli: Config
