lib/core/cosim.ml: Config Engine Resim_tracegen Source Stats
