lib/core/stats.mli: Format Histogram
