lib/core/source.ml: Array Resim_trace
