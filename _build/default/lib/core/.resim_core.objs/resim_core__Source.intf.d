lib/core/source.mli: Resim_trace
