lib/core/lsq.ml: Entry Printf Resim_trace Ring
