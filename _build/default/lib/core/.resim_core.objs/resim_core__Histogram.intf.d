lib/core/histogram.mli: Format
