lib/core/lsq.mli: Entry
