lib/core/engine.mli: Config Entry Resim_bpred Resim_cache Resim_trace Source Stats
