lib/core/ring.mli:
