lib/core/resim.ml: Config Engine Format Resim_cache Resim_fpga Resim_trace Resim_tracegen Stats
