lib/core/pipeline_trace.ml: Buffer Bytes Engine Entry Hashtbl Int64 List Printf Queue Resim_trace
