lib/core/rob.ml: Entry Ring
