lib/core/minor_cycle.ml: Buffer Config List Printf String
