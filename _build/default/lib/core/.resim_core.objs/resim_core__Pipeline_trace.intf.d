lib/core/pipeline_trace.mli: Engine
