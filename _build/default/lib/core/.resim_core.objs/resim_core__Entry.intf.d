lib/core/entry.mli: Format Resim_bpred Resim_trace
