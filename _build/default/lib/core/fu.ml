type t = {
  config : Config.t;
  mutable alu_used : int;
  mutable mult_used : int;
  div_busy_until : int64 array;
  mutable alu_allocations : int64;
}

type request = Alu | Mult | Div

let create (config : Config.t) =
  { config;
    alu_used = 0;
    mult_used = 0;
    div_busy_until = Array.make config.div_count 0L;
    alu_allocations = 0L }

let begin_cycle t =
  t.alu_used <- 0;
  t.mult_used <- 0

let try_allocate t request ~now =
  match request with
  | Alu ->
      if t.alu_used < t.config.alu_count then begin
        t.alu_used <- t.alu_used + 1;
        t.alu_allocations <- Int64.add t.alu_allocations 1L;
        Some t.config.alu_latency
      end
      else None
  | Mult ->
      if t.mult_used < t.config.mult_count then begin
        t.mult_used <- t.mult_used + 1;
        Some t.config.mult_latency
      end
      else None
  | Div ->
      let rec scan i =
        if i >= Array.length t.div_busy_until then None
        else if Int64.compare t.div_busy_until.(i) now <= 0 then begin
          t.div_busy_until.(i) <-
            Int64.add now (Int64.of_int t.config.div_latency);
          Some t.config.div_latency
        end
        else scan (i + 1)
      in
      scan 0

let flush t = Array.fill t.div_busy_until 0 (Array.length t.div_busy_until) 0L

let alu_busy_fraction t ~cycles =
  if Int64.equal cycles 0L || t.config.alu_count = 0 then 0.0
  else
    Int64.to_float t.alu_allocations
    /. (Int64.to_float cycles *. float_of_int t.config.alu_count)
