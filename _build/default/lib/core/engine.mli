(** The ReSim timing engine.

    Consumes a pre-decoded trace and simulates the out-of-order processor
    of Figure 1 one major cycle at a time. Architectural semantics are
    enforced at major-cycle boundaries; each major cycle is charged
    [L(N)] minor cycles according to the configured internal organization
    (§IV) — the three organizations are timing-equivalent at major-cycle
    granularity by design, which a property test asserts.

    Within a major cycle the engine applies stage effects in the
    simulated-semantics order commit → writeback → Lsq_refresh → issue →
    dispatch → decouple → fetch. Running writeback before issue realises
    same-cycle wakeup of single-cycle producers; running commit first
    realises the paper's flag that keeps just-completed instructions from
    committing in the same major cycle.

    Mis-speculation: a tagged block following a branch record means the
    trace generator's predictor missed it. The engine fetches down the
    tagged block, holds further fetch at the first untagged record, and
    squashes at the branch's commit (the resolution point), discarding
    tagged records it never fetched and paying the misspeculation
    penalty. Misfetches (front end needs a taken-target the BTB/RAS
    cannot supply) pay the misfetch penalty. *)

type t

(** Pipeline events observable through {!set_observer}; the hook for
    tracing tools such as {!Pipeline_trace}. Entries are live engine
    state — read, never mutate. *)
type event =
  | Ev_fetch of Resim_trace.Record.t
  | Ev_dispatch of Entry.t
  | Ev_issue of Entry.t
  | Ev_complete of Entry.t
  | Ev_commit of Entry.t
  | Ev_squash of Entry.t
  | Ev_flush_frontend
      (** a squash emptied the IFQ and decouple buffer *)

val create : ?config:Config.t -> Resim_trace.Record.t array -> t
(** Raises [Invalid_argument] when the configuration does not
    {!Config.validate}. Default configuration: {!Config.reference}. *)

val create_from_source : ?config:Config.t -> Source.t -> t
(** Consume records from a {!Source} — in particular a pull source fed
    by a live functional simulator ({!Cosim}), the paper's FAST-style
    on-the-fly mode. *)

val config : t -> Config.t
val stats : t -> Stats.t
val icache : t -> Resim_cache.Cache.t
(** The L1 instruction cache. *)

val dcache : t -> Resim_cache.Cache.t
(** The L1 data cache. *)

val l2cache : t -> Resim_cache.Cache.t option
(** The shared L2, when the configuration has one. *)

val predictor : t -> Resim_bpred.Predictor.t

val set_observer : t -> (event -> unit) -> unit
(** Install the (single) event observer. Events fire in pipeline order
    within a cycle. *)

val cycle : t -> int64
(** Major cycles elapsed. *)

val minor_cycles : t -> int64
(** [cycle * L(N)]. *)

val finished : t -> bool
(** Trace fully consumed and pipeline drained. *)

val step : t -> unit
(** Simulate one major cycle. No-op once {!finished}. *)

exception Deadlock of string
(** Raised by {!run} when no progress is made for a long stretch —
    indicates an engine bug, never expected on valid traces. *)

val run : ?max_cycles:int64 -> t -> Stats.t
(** Step until {!finished} (or [max_cycles], default 1 G). *)

val simulate :
  ?config:Config.t -> Resim_trace.Record.t array -> Stats.t
(** [create] + [run]. *)
