type t = {
  major_cycles : int64 ref;
  fetched : int64 ref;
  fetched_wrong_path : int64 ref;
  discarded_wrong_path : int64 ref;
  dispatched : int64 ref;
  issued : int64 ref;
  committed : int64 ref;
  committed_branches : int64 ref;
  committed_cond_branches : int64 ref;
  committed_loads : int64 ref;
  committed_stores : int64 ref;
  committed_mult_div : int64 ref;
  mispredictions : int64 ref;
  misfetches : int64 ref;
  forwarded_loads : int64 ref;
  icache_stall_cycles : int64 ref;
  fetch_penalty_cycles : int64 ref;
  rob_full_stalls : int64 ref;
  lsq_full_stalls : int64 ref;
  write_port_stalls : int64 ref;
  read_port_stalls : int64 ref;
  commit_width : Histogram.t;
  issue_width : Histogram.t;
  mutable ifq_occupancy_sum : int64;
  mutable rob_occupancy_sum : int64;
  mutable lsq_occupancy_sum : int64;
  mutable occupancy_samples : int64;
}

let create () =
  { major_cycles = ref 0L;
    fetched = ref 0L;
    fetched_wrong_path = ref 0L;
    discarded_wrong_path = ref 0L;
    dispatched = ref 0L;
    issued = ref 0L;
    committed = ref 0L;
    committed_branches = ref 0L;
    committed_cond_branches = ref 0L;
    committed_loads = ref 0L;
    committed_stores = ref 0L;
    committed_mult_div = ref 0L;
    mispredictions = ref 0L;
    misfetches = ref 0L;
    forwarded_loads = ref 0L;
    icache_stall_cycles = ref 0L;
    fetch_penalty_cycles = ref 0L;
    rob_full_stalls = ref 0L;
    lsq_full_stalls = ref 0L;
    write_port_stalls = ref 0L;
    read_port_stalls = ref 0L;
    commit_width = Histogram.create ~bins:17;
    issue_width = Histogram.create ~bins:17;
    ifq_occupancy_sum = 0L;
    rob_occupancy_sum = 0L;
    lsq_occupancy_sum = 0L;
    occupancy_samples = 0L }

let incr t field = (field t) := Int64.add !(field t) 1L
let add t field n = (field t) := Int64.add !(field t) n

let major_cycles t = t.major_cycles
let fetched t = t.fetched
let fetched_wrong_path t = t.fetched_wrong_path
let discarded_wrong_path t = t.discarded_wrong_path
let dispatched t = t.dispatched
let issued t = t.issued
let committed t = t.committed
let committed_branches t = t.committed_branches
let committed_cond_branches t = t.committed_cond_branches
let committed_loads t = t.committed_loads
let committed_stores t = t.committed_stores
let committed_mult_div t = t.committed_mult_div
let mispredictions t = t.mispredictions
let misfetches t = t.misfetches
let forwarded_loads t = t.forwarded_loads
let icache_stall_cycles t = t.icache_stall_cycles
let fetch_penalty_cycles t = t.fetch_penalty_cycles
let rob_full_stalls t = t.rob_full_stalls
let lsq_full_stalls t = t.lsq_full_stalls
let write_port_stalls t = t.write_port_stalls
let read_port_stalls t = t.read_port_stalls

let commit_width_histogram t = t.commit_width
let issue_width_histogram t = t.issue_width
let observe_commit_width t width = Histogram.observe t.commit_width width
let observe_issue_width t width = Histogram.observe t.issue_width width

let sample_occupancy t ~ifq ~rob ~lsq =
  t.ifq_occupancy_sum <- Int64.add t.ifq_occupancy_sum (Int64.of_int ifq);
  t.rob_occupancy_sum <- Int64.add t.rob_occupancy_sum (Int64.of_int rob);
  t.lsq_occupancy_sum <- Int64.add t.lsq_occupancy_sum (Int64.of_int lsq);
  t.occupancy_samples <- Int64.add t.occupancy_samples 1L

let mean sum t =
  if Int64.equal t.occupancy_samples 0L then 0.0
  else Int64.to_float sum /. Int64.to_float t.occupancy_samples

let mean_ifq_occupancy t = mean t.ifq_occupancy_sum t
let mean_rob_occupancy t = mean t.rob_occupancy_sum t
let mean_lsq_occupancy t = mean t.lsq_occupancy_sum t

let ratio num den =
  if Int64.equal den 0L then 0.0 else Int64.to_float num /. Int64.to_float den

let ipc t = ratio !(t.committed) !(t.major_cycles)
let fetched_per_cycle t = ratio !(t.fetched) !(t.major_cycles)

let get field t = !(field t)

let to_assoc t =
  [ ("major_cycles", !(t.major_cycles));
    ("fetched", !(t.fetched));
    ("fetched_wrong_path", !(t.fetched_wrong_path));
    ("discarded_wrong_path", !(t.discarded_wrong_path));
    ("dispatched", !(t.dispatched));
    ("issued", !(t.issued));
    ("committed", !(t.committed));
    ("committed_branches", !(t.committed_branches));
    ("committed_cond_branches", !(t.committed_cond_branches));
    ("committed_loads", !(t.committed_loads));
    ("committed_stores", !(t.committed_stores));
    ("committed_mult_div", !(t.committed_mult_div));
    ("mispredictions", !(t.mispredictions));
    ("misfetches", !(t.misfetches));
    ("forwarded_loads", !(t.forwarded_loads));
    ("icache_stall_cycles", !(t.icache_stall_cycles));
    ("fetch_penalty_cycles", !(t.fetch_penalty_cycles));
    ("rob_full_stalls", !(t.rob_full_stalls));
    ("lsq_full_stalls", !(t.lsq_full_stalls));
    ("write_port_stalls", !(t.write_port_stalls));
    ("read_port_stalls", !(t.read_port_stalls)) ]

let pp ppf t =
  Format.fprintf ppf
    "@[<v>major cycles: %Ld@,\
     fetched: %Ld (%Ld wrong-path, %Ld discarded)@,\
     dispatched: %Ld, issued: %Ld, committed: %Ld (IPC %.3f)@,\
     branches: %Ld committed (%Ld conditional), %Ld squashes, %Ld misfetches@,\
     memory: %Ld loads (%Ld forwarded), %Ld stores@,\
     long ops: %Ld mult/div@,\
     stalls: %Ld rob-full, %Ld lsq-full, %Ld rd-port, %Ld wr-port@,\
     fetch: %Ld icache-stall cycles, %Ld penalty cycles@,\
     occupancy: IFQ %.2f, ROB %.2f, LSQ %.2f@,\
     commit width: %a@,\
     issue width: %a@]"
    !(t.major_cycles) !(t.fetched) !(t.fetched_wrong_path)
    !(t.discarded_wrong_path) !(t.dispatched) !(t.issued) !(t.committed)
    (ipc t) !(t.committed_branches) !(t.committed_cond_branches)
    !(t.mispredictions) !(t.misfetches) !(t.committed_loads)
    !(t.forwarded_loads) !(t.committed_stores) !(t.committed_mult_div)
    !(t.rob_full_stalls) !(t.lsq_full_stalls) !(t.read_port_stalls)
    !(t.write_port_stalls) !(t.icache_stall_cycles)
    !(t.fetch_penalty_cycles) (mean_ifq_occupancy t) (mean_rob_occupancy t)
    (mean_lsq_occupancy t) Histogram.pp t.commit_width Histogram.pp
    t.issue_width
