type state = Dispatched | Issued | Completed

type load_readiness =
  | Load_not_checked
  | Load_blocked
  | Load_forward
  | Load_needs_port

type t = {
  id : int;
  record : Resim_trace.Record.t;
  mutable src1_producer : int option;
  mutable src2_producer : int option;
  mutable state : state;
  mutable complete_at : int64;
  mutable completed_cycle : int64;
  mutable load_readiness : load_readiness;
  mutable forwarded : bool;
  mutable squash_on_commit : bool;
  mutable ras_repair : Resim_bpred.Ras.t option;
}

let make ~id record =
  { id;
    record;
    src1_producer = None;
    src2_producer = None;
    state = Dispatched;
    complete_at = Int64.max_int;
    completed_cycle = Int64.max_int;
    load_readiness = Load_not_checked;
    forwarded = false;
    squash_on_commit = false;
    ras_repair = None }

let sources_ready t = t.src1_producer = None && t.src2_producer = None

let is_load t = Resim_trace.Record.is_load t.record
let is_store t = Resim_trace.Record.is_store t.record
let is_branch t = Resim_trace.Record.is_branch t.record
let is_wrong_path t = t.record.Resim_trace.Record.wrong_path

let pp ppf t =
  let state_name =
    match t.state with
    | Dispatched -> "dispatched"
    | Issued -> "issued"
    | Completed -> "completed"
  in
  Format.fprintf ppf "#%d %a [%s]" t.id Resim_trace.Record.pp t.record
    state_name
