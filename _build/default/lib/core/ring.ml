type 'a t = {
  slots : 'a option array;
  mutable head : int;
  mutable length : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { slots = Array.make capacity None; head = 0; length = 0 }

let capacity t = Array.length t.slots
let length t = t.length
let space t = capacity t - t.length
let is_empty t = t.length = 0
let is_full t = t.length = capacity t

let index t i = (t.head + i) mod capacity t

let push t value =
  if is_full t then failwith "Ring.push: full";
  t.slots.(index t t.length) <- Some value;
  t.length <- t.length + 1

let peek t = if is_empty t then None else t.slots.(t.head)

let pop t =
  if is_empty t then None
  else begin
    let value = t.slots.(t.head) in
    t.slots.(t.head) <- None;
    t.head <- (t.head + 1) mod capacity t;
    t.length <- t.length - 1;
    value
  end

let get t i =
  if i < 0 || i >= t.length then invalid_arg "Ring.get: out of range";
  match t.slots.(index t i) with
  | Some value -> value
  | None -> assert false

let iteri f t =
  for i = 0 to t.length - 1 do
    f i (get t i)
  done

let iter f t = iteri (fun _ value -> f value) t

let exists predicate t =
  let rec scan i =
    i < t.length && (predicate (get t i) || scan (i + 1))
  in
  scan 0

let fold f init t =
  let acc = ref init in
  iter (fun value -> acc := f !acc value) t;
  !acc

let to_list t = List.rev (fold (fun acc value -> value :: acc) [] t)

let clear t =
  Array.fill t.slots 0 (capacity t) None;
  t.head <- 0;
  t.length <- 0

let drop_while_back predicate t =
  let dropped = ref 0 in
  let continue_ = ref true in
  while !continue_ && t.length > 0 do
    let last = get t (t.length - 1) in
    if predicate last then begin
      t.slots.(index t (t.length - 1)) <- None;
      t.length <- t.length - 1;
      incr dropped
    end
    else continue_ := false
  done;
  !dropped
