type result = {
  stats : Stats.t;
  correct_path : int;
  wrong_path : int;
  mispredicted_branches : int;
  peak_buffered_records : int;
}

let run ?(config = Config.reference) ?generator program =
  let generator =
    match generator with
    | Some generator_config -> generator_config
    | None ->
        { Resim_tracegen.Generator.predictor = config.predictor;
          wrong_path_limit = config.rob_entries + config.ifq_entries;
          max_instructions = 20_000_000 }
  in
  let stream = Resim_tracegen.Stream.create ~config:generator program in
  let source =
    Source.of_pull (fun () -> Resim_tracegen.Stream.pull stream)
  in
  let engine = Engine.create_from_source ~config source in
  let peak = ref 0 in
  while not (Engine.finished engine) do
    Engine.step engine;
    peak := max !peak (Source.buffered source)
  done;
  { stats = Engine.stats engine;
    correct_path = Resim_tracegen.Stream.correct_path stream;
    wrong_path = Resim_tracegen.Stream.wrong_path stream;
    mispredicted_branches =
      Resim_tracegen.Stream.mispredicted_branches stream;
    peak_buffered_records = !peak }
