type t = { counts : int64 array; mutable total : int64 }

let create ~bins =
  if bins < 1 then invalid_arg "Histogram.create: bins must be >= 1";
  { counts = Array.make bins 0L; total = 0L }

let bins t = Array.length t.counts

let observe t value =
  let slot =
    if value < 0 then 0
    else if value >= bins t then bins t - 1
    else value
  in
  t.counts.(slot) <- Int64.add t.counts.(slot) 1L;
  t.total <- Int64.add t.total 1L

let count t i =
  if i < 0 || i >= bins t then 0L else t.counts.(i)

let total t = t.total

let mean t =
  if Int64.equal t.total 0L then 0.0
  else begin
    let weighted = ref 0.0 in
    Array.iteri
      (fun value count ->
        weighted := !weighted +. (float_of_int value *. Int64.to_float count))
      t.counts;
    !weighted /. Int64.to_float t.total
  end

let fraction_at t i =
  if Int64.equal t.total 0L then 0.0
  else Int64.to_float (count t i) /. Int64.to_float t.total

let pp ppf t =
  Format.fprintf ppf "@[<h>";
  Array.iteri
    (fun value count ->
      if Int64.compare count 0L > 0 then
        Format.fprintf ppf "%d:%Ld " value count)
    t.counts;
  Format.fprintf ppf "(mean %.2f)@]" (mean t)
