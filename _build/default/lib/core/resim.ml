let version = "1.0.0"

type outcome = {
  config : Config.t;
  stats : Stats.t;
  trace_summary : Resim_trace.Summary.t;
  bits_per_instruction : float;
  icache_stats : Resim_cache.Cache.stats;
  dcache_stats : Resim_cache.Cache.stats;
}

let simulate_trace ?(config = Config.reference) records =
  let engine = Engine.create ~config records in
  let stats = Engine.run engine in
  { config;
    stats;
    trace_summary = Resim_trace.Summary.of_records records;
    bits_per_instruction = Resim_trace.Codec.bits_per_instruction records;
    icache_stats = Resim_cache.Cache.stats (Engine.icache engine);
    dcache_stats = Resim_cache.Cache.stats (Engine.dcache engine) }

let simulate_program ?(config = Config.reference) ?generator program =
  let generator =
    match generator with
    | Some generator_config -> generator_config
    | None ->
        { Resim_tracegen.Generator.default_config with
          predictor = config.predictor;
          wrong_path_limit = config.rob_entries + config.ifq_entries }
  in
  let records = Resim_tracegen.Generator.records ~config:generator program in
  simulate_trace ~config records

let mips outcome ~device =
  Resim_fpga.Throughput.mips ~mhz:device.Resim_fpga.Device.minor_cycle_mhz
    ~minor_cycles_per_major:(Config.minor_cycle_latency outcome.config)
    ~instructions:(Stats.get Stats.committed outcome.stats)
    ~major_cycles:(Stats.get Stats.major_cycles outcome.stats)

let mips_with_wrong_path outcome ~device =
  Resim_fpga.Throughput.mips ~mhz:device.Resim_fpga.Device.minor_cycle_mhz
    ~minor_cycles_per_major:(Config.minor_cycle_latency outcome.config)
    ~instructions:(Stats.get Stats.fetched outcome.stats)
    ~major_cycles:(Stats.get Stats.major_cycles outcome.stats)

let trace_bandwidth_mbytes outcome ~device =
  Resim_fpga.Throughput.trace_mbytes_per_second
    ~mips:(mips_with_wrong_path outcome ~device)
    ~bits_per_instruction:outcome.bits_per_instruction

let pp_outcome ppf outcome =
  Format.fprintf ppf "@[<v>configuration:@,  @[<v>%a@]@,trace:@,  @[<v>%a@]@,\
                      engine:@,  @[<v>%a@]@,trace encoding: %.2f bits/instr@]"
    Config.pp outcome.config Resim_trace.Summary.pp outcome.trace_summary
    Stats.pp outcome.stats outcome.bits_per_instruction
