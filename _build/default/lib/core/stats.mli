(** Simulation statistics.

    Mirrors §V.B: ReSim collects sim-outorder-like statistics in 64-bit
    registers — instruction/branch/memory counts, cache behaviour, queue
    occupancies and detailed branch information. *)

type t

val create : unit -> t

(** {1 Counters} *)

val incr : t -> (t -> int64 ref) -> unit
val add : t -> (t -> int64 ref) -> int64 -> unit

val major_cycles : t -> int64 ref
val fetched : t -> int64 ref
(** All records entering the IFQ, wrong path included. *)

val fetched_wrong_path : t -> int64 ref
val discarded_wrong_path : t -> int64 ref
(** Tagged records skipped at branch resolution without being fetched. *)

val dispatched : t -> int64 ref
val issued : t -> int64 ref
val committed : t -> int64 ref
val committed_branches : t -> int64 ref
val committed_cond_branches : t -> int64 ref
val committed_loads : t -> int64 ref
val committed_stores : t -> int64 ref
val committed_mult_div : t -> int64 ref
val mispredictions : t -> int64 ref
(** Squashes at commit (direction mispredictions in the trace). *)

val misfetches : t -> int64 ref
val forwarded_loads : t -> int64 ref
val icache_stall_cycles : t -> int64 ref
val fetch_penalty_cycles : t -> int64 ref
val rob_full_stalls : t -> int64 ref
val lsq_full_stalls : t -> int64 ref
val write_port_stalls : t -> int64 ref
val read_port_stalls : t -> int64 ref

(** {1 Per-cycle width distributions} *)

val commit_width_histogram : t -> Histogram.t
(** Instructions committed per major cycle. *)

val issue_width_histogram : t -> Histogram.t
(** Instructions issued per major cycle. *)

val observe_commit_width : t -> int -> unit
val observe_issue_width : t -> int -> unit

(** {1 Occupancy accumulators} (sampled once per major cycle) *)

val sample_occupancy : t -> ifq:int -> rob:int -> lsq:int -> unit
val mean_ifq_occupancy : t -> float
val mean_rob_occupancy : t -> float
val mean_lsq_occupancy : t -> float

(** {1 Derived} *)

val ipc : t -> float
(** Committed instructions per major cycle. *)

val fetched_per_cycle : t -> float
(** All fetched records (wrong path included) per major cycle — the
    Table 3 throughput basis. *)

val get : (t -> int64 ref) -> t -> int64

val to_assoc : t -> (string * int64) list
(** Every counter as a (name, value) pair, for CSV/JSON export and for
    whole-state comparisons in tests. *)

val pp : Format.formatter -> t -> unit
