type t = { producers : int option array }

let create ~registers =
  if registers <= 0 then invalid_arg "Rename.create";
  { producers = Array.make registers None }

let producer t reg =
  if reg <= 0 || reg >= Array.length t.producers then None
  else t.producers.(reg)

let define t ~reg ~id =
  if reg > 0 && reg < Array.length t.producers then
    t.producers.(reg) <- Some id

let clear t ~reg ~id =
  if reg > 0 && reg < Array.length t.producers then
    match t.producers.(reg) with
    | Some owner when owner = id -> t.producers.(reg) <- None
    | Some _ | None -> ()

let reset t = Array.fill t.producers 0 (Array.length t.producers) None

let pending t =
  Array.fold_left
    (fun acc slot -> match slot with Some _ -> acc + 1 | None -> acc)
    0 t.producers
