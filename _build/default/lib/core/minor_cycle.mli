(** Minor-cycle schedules — ReSim's internal pipeline (§IV, Figs. 2–4).

    A major cycle (one simulated processor cycle) is divided into minor
    cycles; each simulated stage processes one instruction per minor
    cycle (the serial execution model). The schedule records which unit
    occupies which minor-cycle slot for each of the three organizations,
    and its [length] realises the paper's latency formulas:

    - Simple:    [2N + 3] — Writeback and Lsq_refresh precede Issue;
      every Issue is split into Issue + Cache Access.
    - Improved:  [N + 4]  — Issue precedes Writeback (early broadcast /
      pipelined control); cache access precedes writeback; the last minor
      cycle performs the bookkeeping visible to the next Lsq_refresh.
    - Optimized: [N + 3]  — Lsq_refresh runs in parallel with the first
      Issue slot, which therefore may not issue a load (valid when the
      processor has at most N-1 memory ports).

    The engine charges [length] minor cycles per simulated cycle; the
    rendered schedules reproduce Figures 2, 3 and 4. *)

type unit_ =
  | Fetch of int          (** slot number, 1-based *)
  | Decouple of int
  | Dispatch of int
  | Lsq_refresh
  | Issue of int
  | Cache_access of int   (** D-cache access for issue slot [i] *)
  | Writeback of int
  | Commit of int
  | Bookkeeping

val unit_name : unit_ -> string

type slot = { minor : int; units : unit_ list }
(** Units active in one minor cycle (distinct pipeline lanes). *)

type t = {
  organization : Config.organization;
  width : int;
  length : int;          (** minor cycles per major cycle *)
  slots : slot list;
}

val build : Config.organization -> width:int -> t
(** Raises [Invalid_argument] when [width <= 0]. The resulting [length]
    always equals {!Config.minor_cycles_per_major}. *)

val first_issue_slot_allows_loads : t -> bool
(** [false] exactly for the Optimized organization. *)

val render : t -> string
(** ASCII lane diagram in the style of the paper's figures. *)
