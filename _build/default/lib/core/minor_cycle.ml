type unit_ =
  | Fetch of int
  | Decouple of int
  | Dispatch of int
  | Lsq_refresh
  | Issue of int
  | Cache_access of int
  | Writeback of int
  | Commit of int
  | Bookkeeping

let unit_name = function
  | Fetch i -> Printf.sprintf "F%d" i
  | Decouple i -> Printf.sprintf "DPL%d" i
  | Dispatch i -> Printf.sprintf "D%d" i
  | Lsq_refresh -> "LSQr"
  | Issue i -> Printf.sprintf "I%d" i
  | Cache_access i -> Printf.sprintf "CA%d" i
  | Writeback i -> Printf.sprintf "WB%d" i
  | Commit i -> Printf.sprintf "C%d" i
  | Bookkeeping -> "BK"

type slot = { minor : int; units : unit_ list }

type t = {
  organization : Config.organization;
  width : int;
  length : int;
  slots : slot list;
}

(* Build the slot list from (unit, minor) placements. *)
let slots_of_placements ~length placements =
  List.init length (fun i ->
      let minor = i + 1 in
      let units =
        List.filter_map
          (fun (unit_, at) -> if at = minor then Some unit_ else None)
          placements
      in
      { minor; units })

let simple_placements width =
  let per_slot f = List.init width (fun i -> f (i + 1)) in
  List.concat
    [ per_slot (fun i -> (Fetch i, i));
      per_slot (fun i -> (Decouple i, i + 1));
      per_slot (fun i -> (Dispatch i, i + 2));
      per_slot (fun i -> (Writeback i, i));
      [ (Lsq_refresh, width + 1) ];
      per_slot (fun i -> (Issue i, width + 1 + i));
      per_slot (fun i -> (Cache_access i, width + 2 + i));
      per_slot (fun i -> (Commit i, width + 1 + i));
      [ (Bookkeeping, (2 * width) + 3) ] ]

let improved_placements width =
  let per_slot f = List.init width (fun i -> f (i + 1)) in
  List.concat
    [ per_slot (fun i -> (Fetch i, i));
      per_slot (fun i -> (Decouple i, i + 1));
      per_slot (fun i -> (Dispatch i, i + 2));
      [ (Lsq_refresh, 1) ];
      per_slot (fun i -> (Issue i, i + 1));
      per_slot (fun i -> (Cache_access i, i + 2));
      per_slot (fun i -> (Writeback i, i + 3));
      per_slot (fun i -> (Commit i, i));
      [ (Bookkeeping, width + 4) ] ]

let optimized_placements width =
  let per_slot f = List.init width (fun i -> f (i + 1)) in
  let cache_accesses =
    (* The first Issue slot is barred to loads, so it needs no cache
       access minor cycle. *)
    List.filter_map
      (fun i -> if i = 1 then None else Some (Cache_access i, i + 1))
      (List.init width (fun i -> i + 1))
  in
  List.concat
    [ per_slot (fun i -> (Fetch i, i));
      per_slot (fun i -> (Decouple i, i + 1));
      per_slot (fun i -> (Dispatch i, i + 2));
      [ (Lsq_refresh, 1) ];
      per_slot (fun i -> (Issue i, i));
      cache_accesses;
      per_slot (fun i -> (Writeback i, i + 2));
      per_slot (fun i -> (Commit i, i));
      [ (Bookkeeping, width + 3) ] ]

let build organization ~width =
  if width <= 0 then invalid_arg "Minor_cycle.build: width must be positive";
  let length = Config.minor_cycles_per_major organization ~width in
  let placements =
    match organization with
    | Config.Simple -> simple_placements width
    | Config.Improved -> improved_placements width
    | Config.Optimized -> optimized_placements width
  in
  (* Sanity: no placement may fall outside the major cycle. *)
  List.iter
    (fun (unit_, at) ->
      if at < 1 || at > length then
        invalid_arg
          (Printf.sprintf "Minor_cycle.build: %s placed at %d of %d"
             (unit_name unit_) at length))
    placements;
  { organization; width; length; slots = slots_of_placements ~length placements }

let first_issue_slot_allows_loads t =
  match t.organization with
  | Config.Simple | Config.Improved -> true
  | Config.Optimized -> false

(* Lanes for the diagram, one row per stage. *)
let lanes =
  [ ("Fetch", function Fetch i -> Some i | _ -> None);
    ("Decouple", function Decouple i -> Some i | _ -> None);
    ("Dispatch", function Dispatch i -> Some i | _ -> None);
    ("Lsq_refresh", function Lsq_refresh -> Some 0 | _ -> None);
    ("Issue", function Issue i -> Some i | _ -> None);
    ("CacheAccess", function Cache_access i -> Some i | _ -> None);
    ("Writeback", function Writeback i -> Some i | _ -> None);
    ("Commit", function Commit i -> Some i | _ -> None);
    ("Bookkeeping", function Bookkeeping -> Some 0 | _ -> None) ]

let render t =
  let buffer = Buffer.create 1024 in
  Printf.bprintf buffer
    "%s organization, %d-wide: %d minor cycles per major cycle\n"
    (String.capitalize_ascii (Config.organization_name t.organization))
    t.width t.length;
  Printf.bprintf buffer "%-12s" "minor:";
  List.iter (fun slot -> Printf.bprintf buffer "%4d" slot.minor) t.slots;
  Buffer.add_char buffer '\n';
  List.iter
    (fun (name, match_unit) ->
      let cells =
        List.map
          (fun slot ->
            match List.filter_map match_unit slot.units with
            | [] -> "   ."
            | 0 :: _ -> "   X"
            | i :: _ -> Printf.sprintf "%4d" i)
          t.slots
      in
      if List.exists (fun c -> c <> "   .") cells then begin
        Printf.bprintf buffer "%-12s" name;
        List.iter (Buffer.add_string buffer) cells;
        Buffer.add_char buffer '\n'
      end)
    lanes;
  Buffer.contents buffer
