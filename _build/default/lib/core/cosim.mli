(** On-the-fly co-simulation — functional simulator feeding the timing
    engine directly, the FAST-style mode the paper names as future work
    (§VI: “produce the trace on the fly directly from a functional
    simulator”).

    The incremental generator ({!Resim_tracegen.Stream}) and the engine
    are coupled through a pull {!Source}; records are produced exactly
    when the engine's fetch unit needs them and reclaimed once consumed,
    so memory stays bounded by the engine's lookahead instead of the
    trace length. Results are bit-identical to the offline pipeline
    (generate-then-simulate), which an integration test asserts. *)

type result = {
  stats : Stats.t;
  correct_path : int;           (** instructions functionally executed *)
  wrong_path : int;             (** tagged records produced *)
  mispredicted_branches : int;
  peak_buffered_records : int;  (** high-water mark of the pull window *)
}

val run :
  ?config:Config.t ->
  ?generator:Resim_tracegen.Generator.config ->
  Resim_isa.Program.t ->
  result
(** When [generator] is omitted it mirrors the engine configuration
    (same predictor; wrong-path limit ROB + IFQ), as in
    {!Resim.simulate_program}. *)
