(** Registry of the five SPECINT CPU2000 stand-in kernels used throughout
    the evaluation (gzip, bzip2, parser, vortex, vpr — the five programs
    of Table 1). *)

type t = (module Kernel_sig.S)

val all : t list
(** In the paper's table order: gzip, bzip2, parser, vortex, vpr. *)

val extended : t list
(** Additional kernels beyond the paper's five (mcf, twolf stand-ins),
    for broader design-space studies; not part of the regenerated
    tables. *)

val find : string -> t
(** Lookup by name across {!all} and {!extended}; raises [Not_found]. *)

val names : string list

val program_of : t -> ?scale:int -> unit -> Resim_isa.Program.t
val name_of : t -> string
val description_of : t -> string
val profile_of : t -> instructions:int -> Resim_tracegen.Synthetic.profile
