(** The vortex stand-in: call-heavy hashed object store.
    See the implementation header for how the kernel reproduces the
    original benchmark's character. *)

include Kernel_sig.S
