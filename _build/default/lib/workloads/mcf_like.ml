(* mcf analog (extended workload, not part of the paper's five): network
   simplex flavour — arc-list traversal with indirect node loads and a
   cost-comparison branch that follows the data. Heavily memory-bound
   and branchy, even worse than the parser stand-in. *)

open Resim_isa
open Asm

let name = "mcf"
let description = "arc relaxation over an implicit network (extended)"

let evaluation_scale = 16384

let program ?(scale = 4096) () =
  let arcs = max 64 scale in
  let nodes = max 64 (arcs / 4) in
  let node_mask =
    let rec pow2 p = if p * 2 > nodes then p else pow2 (p * 2) in
    pow2 1 - 1
  in
  assemble
    ([ (* arc array at region_buffer: per arc, two packed node ids
          derived from an LCG; node potentials at region_table *)
       li s0 Builders.region_buffer;
       li a0 arcs;
       li t1 31 ]
    @ Builders.fill_bytes ~label_prefix:"mc" ~base:s0 ~count:a0 ~state:t1
    @ [ (* node potentials: potential[n] = n * 3 + 7 *)
        li s1 Builders.region_table;
        li t0 0;
        li a1 nodes;
        li s3 2;
        label "mc_pot";
        li t2 3;
        mul t2 t0 t2;
        addi t2 t2 7;
        sll t3 t0 s3;
        add t3 s1 t3;
        sw t2 0 t3;
        addi t0 t0 1;
        blt t0 a1 "mc_pot";
        (* relaxation sweep over the arcs *)
        li t0 0;
        li v0 0;                 (* improvements found *)
        li a2 0;                 (* running cost *)
        label "mc_arc";
        add t2 s0 t0;
        lb t3 0 t2;              (* head byte *)
        lb t4 1 t2;              (* tail byte *)
        li t5 5;
        mul t5 t3 t5;
        add t5 t5 t4;
        andi t5 t5 node_mask;    (* head node id *)
        sll t5 t5 s3;
        add t5 s1 t5;
        lw t6 0 t5;              (* potential[head]: indirect load *)
        li t5 11;
        mul t5 t4 t5;
        add t5 t5 t3;
        andi t5 t5 node_mask;    (* tail node id *)
        sll t5 t5 s3;
        add t5 s1 t5;
        lw t7 0 t5;              (* potential[tail]: indirect load *)
        sub t7 t6 t7;            (* reduced cost *)
        add a2 a2 t7;
        (* data-dependent acceptance branch *)
        andi t7 t7 3;
        bne t7 Reg.zero "mc_skip";
        addi v0 v0 1;
        sw a2 0 t5;              (* update the potential *)
        label "mc_skip";
        addi t0 t0 1;
        blt t0 a0 "mc_arc";
        halt ])

let profile ~instructions =
  { (Resim_tracegen.Synthetic.balanced ~name ~instructions) with
    loads = 0.34;
    stores = 0.04;
    branches = 0.16;
    calls = 0.0;
    mults = 0.08;
    divides = 0.0;
    dependency_density = 0.55;
    mispredict_rate = 0.1;
    taken_rate = 0.6;
    working_set_bytes = 192 * 1024;
    sequential_locality = 0.3 }
