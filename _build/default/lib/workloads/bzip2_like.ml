(* bzip2 analog: byte-frequency histogram, prefix sum and rank transform
   over a pseudo-random buffer — streaming array work with predictable
   branches and high ILP, the best case under a perfect memory system and
   noticeably cache-sensitive once L1s are modelled (large sequential
   footprint), matching the published behaviour. *)

open Resim_isa
open Asm

let name = "bzip2"
let description = "histogram + prefix sum + rank transform (BWT flavour)"

let evaluation_scale = 131072

let largest_power_of_two_below n =
  let rec loop p = if p * 2 > n then p else loop (p * 2) in
  loop 1

let program ?(scale = 8192) () =
  let n = max 64 scale in
  let pow2_mask = largest_power_of_two_below n - 1 in
  assemble
    ([ li s0 Builders.region_buffer; li a0 n; li t1 1 ]
    @ Builders.fill_bytes ~label_prefix:"bz" ~base:s0 ~count:a0 ~state:t1
    @ [ (* zero the 256 counters *)
        li s1 Builders.region_table;
        li t0 0;
        li s3 2;
        label "bz_zero";
        sll t3 t0 s3;
        add t3 s1 t3;
        sw Reg.zero 0 t3;
        addi t0 t0 1;
        slti t2 t0 256;
        bne t2 Reg.zero "bz_zero";
        (* histogram pass *)
        li t0 0;
        label "bz_hist";
        add t2 s0 t0;
        lb t3 0 t2;
        sll t4 t3 s3;
        add t4 s1 t4;
        lw t5 0 t4;
        addi t5 t5 1;
        sw t5 0 t4;
        addi t0 t0 1;
        blt t0 a0 "bz_hist";
        (* prefix sum over the counters *)
        li t0 0;
        li t1 0;
        label "bz_prefix";
        sll t3 t0 s3;
        add t3 s1 t3;
        lw t2 0 t3;
        add t1 t1 t2;
        sw t1 0 t3;
        addi t0 t0 1;
        slti t2 t0 256;
        bne t2 Reg.zero "bz_prefix";
        (* rank transform into the aux region *)
        li s2 Builders.region_aux;
        li t0 0;
        label "bz_trans";
        add t2 s0 t0;
        lb t3 0 t2;
        sll t4 t3 s3;
        add t4 s1 t4;
        lw t5 0 t4;
        sll t7 t0 s3;
        add t7 s2 t7;
        sw t5 0 t7;
        addi t0 t0 1;
        blt t0 a0 "bz_trans";
        (* inverse transform: the BWT decode is a serial permutation
           chase — each rank read determines the next position, a
           dependent random walk over the whole rank array that is the
           cache-hostile phase of the real program. n/4 hops keep its
           share of the run comparable to the original's. *)
        li t0 0;                 (* j, word index into the rank array *)
        li t4 0;                 (* hop counter *)
        li v0 0;
        li a1 2;
        srl a1 a0 a1;            (* n / 4 hops *)
        label "bz_inv";
        sll t7 t0 s3;
        add t7 s2 t7;
        lw t5 0 t7;              (* out[j] *)
        add t0 t0 t5;
        add t0 t0 t4;            (* hop counter breaks functional-graph
                                    cycles that would refit the cache *)
        addi t0 t0 1;
        andi t0 t0 pow2_mask;    (* j = (j + out[j] + hop + 1) mod n *)
        add v0 v0 t5;
        addi t4 t4 1;
        blt t4 a1 "bz_inv";
        halt ])

let profile ~instructions =
  { (Resim_tracegen.Synthetic.balanced ~name ~instructions) with
    loads = 0.24;
    stores = 0.14;
    branches = 0.09;
    calls = 0.0;
    mults = 0.002;
    divides = 0.0;
    dependency_density = 0.22;
    mispredict_rate = 0.012;
    taken_rate = 0.92;
    working_set_bytes = 512 * 1024;
    sequential_locality = 0.9 }
