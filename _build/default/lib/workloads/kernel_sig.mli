(** Interface shared by the five SPECINT-like kernels. *)

module type S = sig
  val name : string
  val description : string

  val program : ?scale:int -> unit -> Resim_isa.Program.t
  (** [scale] controls the dynamic instruction count (roughly linearly);
      defaults give a few hundred thousand instructions. *)

  val evaluation_scale : int
  (** The scale the benchmark harness uses to regenerate the paper's
      tables: large enough for steady state and for the working set to
      pressure a 32 KB L1. *)

  val profile : instructions:int -> Resim_tracegen.Synthetic.profile
  (** Statistical profile matching the kernel's character, for bulk
      synthetic-trace sweeps. *)
end
