(** The vpr stand-in: grid placement cost with MAC and divide.
    See the implementation header for how the kernel reproduces the
    original benchmark's character. *)

include Kernel_sig.S
