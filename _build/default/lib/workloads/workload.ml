type t = (module Kernel_sig.S)

let all : t list =
  [ (module Gzip_like); (module Bzip2_like); (module Parser_like);
    (module Vortex_like); (module Vpr_like) ]

let extended : t list = [ (module Mcf_like); (module Twolf_like) ]

let name_of (module K : Kernel_sig.S) = K.name
let description_of (module K : Kernel_sig.S) = K.description

let find name =
  match List.find_opt (fun k -> name_of k = name) (all @ extended) with
  | Some k -> k
  | None -> raise Not_found

let names = List.map name_of all

let program_of (module K : Kernel_sig.S) ?scale () = K.program ?scale ()

let profile_of (module K : Kernel_sig.S) ~instructions =
  K.profile ~instructions
