(** The bzip2 stand-in: histogram, prefix sum, rank transform and BWT-decode chase.
    See the implementation header for how the kernel reproduces the
    original benchmark's character. *)

include Kernel_sig.S
