(* twolf analog (extended workload, not part of the paper's five):
   standard-cell placement flavour — compute wire-length deltas for
   candidate swaps over a cell array, accept on a data-dependent
   threshold. Arithmetic-heavy with a mid-rate unpredictable branch. *)

open Resim_isa
open Asm

let name = "twolf"
let description = "cell-swap wirelength deltas (extended)"

let evaluation_scale = 12288

let program ?(scale = 4096) () =
  let cells = max 64 scale in
  let cell_mask =
    let rec pow2 p = if p * 2 > cells then p else pow2 (p * 2) in
    pow2 1 - 1
  in
  assemble
    ([ li s0 Builders.region_buffer;
       li a0 cells;
       li t1 17 ]
    @ Builders.fill_bytes ~label_prefix:"tw" ~base:s0 ~count:a0 ~state:t1
    @ [ (* positions: pos[c] = (c * 37) & 1023, as words *)
        li s1 Builders.region_table;
        li t0 0;
        li s3 2;
        label "tw_pos";
        li t2 37;
        mul t2 t0 t2;
        andi t2 t2 1023;
        sll t3 t0 s3;
        add t3 s1 t3;
        sw t2 0 t3;
        addi t0 t0 1;
        blt t0 a0 "tw_pos";
        (* candidate swaps *)
        li t0 0;
        li v0 0;                 (* accepted swaps *)
        label "tw_swap";
        add t2 s0 t0;
        lb t3 0 t2;              (* candidate partner, data-derived *)
        li t4 13;
        mul t4 t3 t4;
        add t4 t4 t0;
        andi t4 t4 cell_mask;    (* partner cell id *)
        sll t5 t0 s3;
        add t5 s1 t5;
        lw t6 0 t5;              (* pos[c] *)
        sll t7 t4 s3;
        add t7 s1 t7;
        lw t7 0 t7;              (* pos[partner] *)
        sub t7 t6 t7;
        mul t7 t7 t7;            (* squared distance = delta proxy *)
        (* accept when the low bits of the delta look favourable *)
        andi t7 t7 7;
        bne t7 Reg.zero "tw_reject";
        addi v0 v0 1;
        sw t6 0 t5;
        label "tw_reject";
        addi t0 t0 1;
        blt t0 a0 "tw_swap";
        halt ])

let profile ~instructions =
  { (Resim_tracegen.Synthetic.balanced ~name ~instructions) with
    loads = 0.26;
    stores = 0.06;
    branches = 0.14;
    calls = 0.0;
    mults = 0.12;
    divides = 0.0;
    dependency_density = 0.45;
    mispredict_rate = 0.07;
    taken_rate = 0.7;
    working_set_bytes = 64 * 1024;
    sequential_locality = 0.45 }
