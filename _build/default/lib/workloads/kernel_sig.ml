module type S = sig
  val name : string
  val description : string
  val program : ?scale:int -> unit -> Resim_isa.Program.t
  val evaluation_scale : int
  val profile : instructions:int -> Resim_tracegen.Synthetic.profile
end
