(** The gzip stand-in: LZ77 hash-chain match finding.
    See the implementation header for how the kernel reproduces the
    original benchmark's character. *)

include Kernel_sig.S
