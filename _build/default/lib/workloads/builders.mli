(** Shared assembly fragments for the SPEC-like kernels.

    All kernels are deterministic: pseudo-randomness comes from an
    in-ISA linear congruential generator, so the same scale always yields
    the same dynamic instruction stream. *)

open Resim_isa

val lcg_step : state:Reg.t -> scratch:Reg.t -> Asm.stmt list
(** Advance [state] by one LCG step (state = state * 1103515245 + 12345,
    masked to 31 bits). [scratch] is clobbered. *)

val fill_bytes :
  label_prefix:string ->
  base:Reg.t ->
  count:Reg.t ->
  state:Reg.t ->
  Asm.stmt list
(** Emit a loop storing [count] pseudo-random bytes at [base]. Clobbers
    registers [t5], [t6], [t7]. *)

val region_buffer : int
(** Byte address of the main data buffer. *)

val region_table : int
(** Byte address of an auxiliary table (hash heads, counters, ...). *)

val region_aux : int
(** Byte address of a second auxiliary region. *)
