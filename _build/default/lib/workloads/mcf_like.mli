(** The mcf stand-in: arc relaxation over an implicit network (extended workload).
    See the implementation header for how the kernel reproduces the
    original benchmark's character. *)

include Kernel_sig.S
