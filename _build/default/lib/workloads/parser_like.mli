(** The parser stand-in: linked-list build and pointer-chasing traversal.
    See the implementation header for how the kernel reproduces the
    original benchmark's character. *)

include Kernel_sig.S
