(* vpr analog: placement-cost evaluation on a 2D grid — strided
   neighbour loads, multiply-accumulate arithmetic and a periodic divide
   for normalisation, with moderately predictable control flow. *)

open Resim_isa
open Asm

let name = "vpr"
let description = "grid placement cost: neighbour loads + MAC + divide"

let grid_dim = 64

let evaluation_scale = 6

let program ?(scale = 3) () =
  let sweeps = max 1 scale in
  let cells = grid_dim * grid_dim in
  assemble
    [ (* initialise the grid with LCG words *)
      li s0 Builders.region_buffer;
      li t1 11;
      li t0 0;
      li a0 cells;
      li s3 2;
      label "vp_init";
      li t6 1103515245;
      mul t1 t1 t6;
      addi t1 t1 12345;
      li t6 0x7fffffff;
      and_ t1 t1 t6;
      li t6 16;
      srl t2 t1 t6;
      andi t2 t2 1023;
      sll t3 t0 s3;
      add t3 s0 t3;
      sw t2 0 t3;
      addi t0 t0 1;
      blt t0 a0 "vp_init";
      (* cost sweeps over interior cells *)
      li s1 0;                   (* sweep counter *)
      li a1 sweeps;
      label "vp_sweep";
      li s2 0;                   (* accumulated cost *)
      li t0 grid_dim;            (* start at row 1 *)
      addi a2 a0 (-grid_dim);    (* stop before last row *)
      label "vp_cell";
      sll t3 t0 s3;
      add t3 s0 t3;
      lw t4 0 t3;                (* centre *)
      lw t5 4 t3;                (* right *)
      lw t6 (-4) t3;             (* left *)
      sub t5 t4 t5;
      sub t6 t4 t6;
      mul t5 t5 t5;
      mul t6 t6 t6;
      add s2 s2 t5;
      add s2 s2 t6;
      lw t5 (grid_dim * 4) t3;   (* down *)
      lw t6 (-grid_dim * 4) t3;  (* up *)
      sub t5 t4 t5;
      sub t6 t4 t6;
      mul t5 t5 t5;
      mul t6 t6 t6;
      add s2 s2 t5;
      add s2 s2 t6;
      (* data-dependent normalisation: cells with small centre values
         trigger a divide — an unpredictable branch plus a serialising
         long-latency operation *)
      andi t7 t4 3;
      bne t7 Reg.zero "vp_skip_div";
      li t7 7;
      div s2 s2 t7;
      label "vp_skip_div";
      addi t0 t0 1;
      blt t0 a2 "vp_cell";
      addi s1 s1 1;
      blt s1 a1 "vp_sweep";
      halt ]

let profile ~instructions =
  { (Resim_tracegen.Synthetic.balanced ~name ~instructions) with
    loads = 0.28;
    stores = 0.05;
    branches = 0.11;
    calls = 0.0;
    mults = 0.09;
    divides = 0.004;
    dependency_density = 0.35;
    mispredict_rate = 0.03;
    taken_rate = 0.85;
    working_set_bytes = 128 * 1024;
    sequential_locality = 0.75 }
