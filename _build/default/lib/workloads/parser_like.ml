(* parser analog: token bucketing into linked lists followed by
   pointer-chasing traversal with data-dependent branches — serially
   dependent loads and poorly predictable branches give it the lowest
   IPC of the five kernels, as in the published table. *)

open Resim_isa
open Asm

let name = "parser"
let description = "linked-list build + pointer-chasing traversal"

let evaluation_scale = 49152

let program ?(scale = 6144) () =
  let n = max 64 scale in
  let buckets = 64 in
  assemble
    ([ li s0 Builders.region_buffer; li a0 n; li t1 99 ]
    @ Builders.fill_bytes ~label_prefix:"pr" ~base:s0 ~count:a0 ~state:t1
    @ [ (* clear bucket heads *)
        li s1 Builders.region_table;
        li t0 0;
        li s3 2;
        label "pr_clear";
        sll t3 t0 s3;
        add t3 s1 t3;
        sw Reg.zero 0 t3;
        addi t0 t0 1;
        slti t2 t0 buckets;
        bne t2 Reg.zero "pr_clear";
        (* build: push node i at the head of bucket (token & 63) *)
        li s2 Builders.region_aux;
        li t0 0;
        li v0 3;                 (* node size shift: 8 bytes *)
        label "pr_build";
        add t2 s0 t0;
        lb t3 0 t2;              (* token *)
        sll t4 t0 v0;
        add t4 s2 t4;            (* node address *)
        sw t3 0 t4;              (* node.value = token *)
        andi t5 t3 (buckets - 1);
        sll t5 t5 s3;
        add t5 s1 t5;            (* head slot *)
        lw t6 0 t5;
        sw t6 4 t4;              (* node.next = old head *)
        sw t4 0 t5;              (* head = node *)
        addi t0 t0 1;
        blt t0 a0 "pr_build";
        (* traverse every bucket, branching on token parity *)
        li t0 0;
        li a1 0;                 (* odd count *)
        li a2 0;                 (* even count *)
        label "pr_bucket";
        sll t3 t0 s3;
        add t3 s1 t3;
        lw t4 0 t3;              (* p = head *)
        label "pr_walk";
        beq t4 Reg.zero "pr_bucket_done";
        lw t5 0 t4;              (* value *)
        (* test a bit outside the bucket mask, so the outcome is not
           constant within a bucket — a genuinely data-dependent branch *)
        andi t6 t5 64;
        beq t6 Reg.zero "pr_even";
        addi a1 a1 1;
        j "pr_walk_next";
        label "pr_even";
        addi a2 a2 1;
        label "pr_walk_next";
        lw t4 4 t4;              (* p = p->next: the pointer chase *)
        j "pr_walk";
        label "pr_bucket_done";
        addi t0 t0 1;
        slti t2 t0 buckets;
        bne t2 Reg.zero "pr_bucket";
        halt ])

let profile ~instructions =
  { (Resim_tracegen.Synthetic.balanced ~name ~instructions) with
    loads = 0.33;
    stores = 0.1;
    branches = 0.21;
    calls = 0.0;
    mults = 0.0;
    divides = 0.0;
    dependency_density = 0.6;
    mispredict_rate = 0.085;
    taken_rate = 0.55;
    working_set_bytes = 96 * 1024;
    sequential_locality = 0.25 }
