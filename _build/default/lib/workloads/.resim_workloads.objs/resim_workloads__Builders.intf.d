lib/workloads/builders.mli: Asm Reg Resim_isa
