lib/workloads/builders.ml: Asm Resim_isa
