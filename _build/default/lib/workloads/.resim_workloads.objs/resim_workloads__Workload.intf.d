lib/workloads/workload.mli: Kernel_sig Resim_isa Resim_tracegen
