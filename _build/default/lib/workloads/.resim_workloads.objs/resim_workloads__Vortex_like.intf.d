lib/workloads/vortex_like.mli: Kernel_sig
