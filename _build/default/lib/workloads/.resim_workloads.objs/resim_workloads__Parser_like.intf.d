lib/workloads/parser_like.mli: Kernel_sig
