lib/workloads/gzip_like.mli: Kernel_sig
