lib/workloads/vpr_like.mli: Kernel_sig
