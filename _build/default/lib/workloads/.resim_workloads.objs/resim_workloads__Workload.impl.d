lib/workloads/workload.ml: Bzip2_like Gzip_like Kernel_sig List Mcf_like Parser_like Twolf_like Vortex_like Vpr_like
