lib/workloads/vortex_like.ml: Asm Builders Reg Resim_isa Resim_tracegen
