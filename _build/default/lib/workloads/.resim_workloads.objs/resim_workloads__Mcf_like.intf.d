lib/workloads/mcf_like.mli: Kernel_sig
