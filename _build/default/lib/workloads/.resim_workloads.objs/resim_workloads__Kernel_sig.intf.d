lib/workloads/kernel_sig.mli: Resim_isa Resim_tracegen
