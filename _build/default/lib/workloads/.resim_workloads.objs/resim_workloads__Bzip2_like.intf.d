lib/workloads/bzip2_like.mli: Kernel_sig
