lib/workloads/twolf_like.mli: Kernel_sig
