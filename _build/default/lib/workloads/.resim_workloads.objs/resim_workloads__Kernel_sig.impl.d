lib/workloads/kernel_sig.ml: Resim_isa Resim_tracegen
