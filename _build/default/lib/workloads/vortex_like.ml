(* vortex analog: an in-memory object store exercised through call/return
   — insert a stream of keyed records into a hashed index, then look a
   sample back up. The subroutine structure stresses the Return Address
   Stack; record-field writes give it the store-heavy profile of the
   original. *)

open Resim_isa
open Asm

let name = "vortex"
let description = "hashed object store: call-heavy insert/lookup"

let evaluation_scale = 16384

let largest_power_of_two_below n =
  let rec loop p = if p * 2 > n then p else loop (p * 2) in
  loop 1

let program ?(scale = 4096) () =
  let n = max 64 scale in
  let slot_mask = largest_power_of_two_below n - 1 in
  let index_mask = 1023 in
  assemble ~entry:"vx_main"
    [ (* insert(a0 = key, a1 = slot number) *)
      label "vx_insert";
      li t6 12;
      srl t5 a0 t6;
      andi t5 t5 index_mask;
      li t6 2;
      sll t5 t5 t6;
      add t5 s1 t5;
      addi t6 a1 1;
      sw t6 0 t5;             (* index[h] = slot + 1 *)
      li t6 4;
      sll t7 a1 t6;
      add t7 s2 t7;           (* record base: 16 bytes each *)
      sw a0 0 t7;             (* .key *)
      addi t6 a0 1;
      sw t6 4 t7;             (* .f1 *)
      add t6 a0 a0;
      sw t6 8 t7;             (* .f2 *)
      sw a1 12 t7;            (* .f3 *)
      jr Reg.ra;
      (* find(a0 = key) -> v0 = 1 if the derived record slot holds the
         key. Probes the (hot) index, then loads the record itself at a
         key-derived position — a random access across the whole store. *)
      label "vx_find";
      li v0 0;
      li t6 12;
      srl t5 a0 t6;
      andi t5 t5 index_mask;
      li t6 2;
      sll t5 t5 t6;
      add t5 s1 t5;
      lw t6 0 t5;             (* index probe *)
      beq t6 Reg.zero "vx_find_done";
      li t7 12;
      srl t6 a0 t7;
      andi t6 t6 slot_mask;   (* record id derived from the key *)
      li t7 4;
      sll t6 t6 t7;
      add t6 s2 t6;
      lw t7 0 t6;             (* stored key *)
      bne t7 a0 "vx_find_done";
      li v0 1;
      label "vx_find_done";
      jr Reg.ra;
      (* main *)
      label "vx_main";
      li s1 Builders.region_table;
      li s2 Builders.region_aux;
      li s0 5;                (* LCG state *)
      li s3 0;                (* i *)
      li a2 n;
      label "vx_ins_loop";
      li t6 1103515245;
      mul s0 s0 t6;
      addi s0 s0 12345;
      li t6 0x7fffffff;
      and_ s0 s0 t6;
      mv a0 s0;
      mv a1 s3;
      jal "vx_insert";
      (* data-dependent bookkeeping for ~1/8 of the keys *)
      li t6 0xf0000;
      and_ t6 a0 t6;
      bne t6 Reg.zero "vx_ins_skip";
      addi a1 a1 1;
      label "vx_ins_skip";
      addi s3 s3 1;
      blt s3 a2 "vx_ins_loop";
      (* lookup pass: re-derive the same key stream *)
      li s0 5;
      li s3 0;
      li v0 0;
      li a1 0;                (* hits *)
      label "vx_find_loop";
      li t6 1103515245;
      mul s0 s0 t6;
      addi s0 s0 12345;
      li t6 0x7fffffff;
      and_ s0 s0 t6;
      mv a0 s0;
      jal "vx_find";
      li t6 0xf0000;
      and_ t6 a0 t6;
      bne t6 Reg.zero "vx_find_skip";
      add a1 a1 v0;
      label "vx_find_skip";
      addi s3 s3 1;
      blt s3 a2 "vx_find_loop";
      halt ]

let profile ~instructions =
  { (Resim_tracegen.Synthetic.balanced ~name ~instructions) with
    loads = 0.2;
    stores = 0.17;
    branches = 0.12;
    calls = 0.04;
    mults = 0.035;
    divides = 0.0;
    dependency_density = 0.38;
    mispredict_rate = 0.035;
    taken_rate = 0.7;
    working_set_bytes = 256 * 1024;
    sequential_locality = 0.45 }
