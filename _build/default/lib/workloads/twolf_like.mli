(** The twolf stand-in: cell-swap wirelength deltas (extended workload).
    See the implementation header for how the kernel reproduces the
    original benchmark's character. *)

include Kernel_sig.S
