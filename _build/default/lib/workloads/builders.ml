open Resim_isa

let region_buffer = 0x1_0000
let region_table = 0x8_0000
let region_aux = 0x10_0000

let lcg_step ~state ~scratch =
  Asm.
    [ li scratch 1103515245;
      mul state state scratch;
      addi state state 12345;
      li scratch 0x7fffffff;
      and_ state state scratch ]

let fill_bytes ~label_prefix ~base ~count ~state =
  let loop = label_prefix ^ "_fill" in
  let done_ = label_prefix ^ "_fill_done" in
  Asm.(
    [ li t5 0; label loop; bge t5 count done_ ]
    (* Take the byte from the high half of the state: low LCG bits have
       short periods that branch predictors learn. *)
    @ lcg_step ~state ~scratch:t6
    @ [ li t6 16;
        srl t6 state t6;
        andi t6 t6 255;
        add t7 base t5;
        sb t6 0 t7;
        addi t5 t5 1;
        j loop;
        label done_ ])
