(* gzip analog: LZ77-style match finding over a pseudo-random buffer
   with a rolling two-byte hash and a chained head table. The inner
   match-extension loop branches on data, giving the moderate
   misprediction rate and dependent-load pattern of the real encoder. *)

open Resim_isa
open Asm

let name = "gzip"
let description = "LZ77 hash-chain match finding"

let evaluation_scale = 65536

let program ?(scale = 16384) () =
  let n = max 64 scale in
  let hash_mask = 1023 in
  assemble
    ([ li s0 Builders.region_buffer; li a0 n; li t1 7 ]
    @ Builders.fill_bytes ~label_prefix:"gz" ~base:s0 ~count:a0 ~state:t1
    @ [ (* clear the head table *)
        li s1 Builders.region_table;
        li t0 0;
        li s3 2;
        label "gz_clear";
        sll t3 t0 s3;
        add t3 s1 t3;
        sw Reg.zero 0 t3;
        addi t0 t0 1;
        slti t2 t0 (hash_mask + 1);
        bne t2 Reg.zero "gz_clear";
        (* main scan: i in 0 .. n-2 *)
        li t0 0;
        li s2 0;                  (* total match length found *)
        addi a1 a0 (-1);          (* n - 1 *)
        label "gz_scan";
        add t2 s0 t0;
        lb t3 0 t2;               (* a = buf[i] *)
        lb t4 1 t2;               (* b = buf[i+1] *)
        li t5 31;
        mul t5 t3 t5;
        add t5 t5 t4;
        andi t5 t5 hash_mask;     (* h *)
        sll t5 t5 s3;
        add t5 s1 t5;             (* head slot *)
        lw t6 0 t5;               (* candidate + 1, 0 = none *)
        addi t7 t0 1;
        sw t7 0 t5;               (* head[h] = i + 1 *)
        beq t6 Reg.zero "gz_next";
        addi t6 t6 (-1);          (* candidate position *)
        add t7 s0 t6;
        lb t7 0 t7;               (* buf[cand] *)
        bne t7 t3 "gz_next";
        (* extend the match, bounded to 8 bytes *)
        li v0 1;                  (* len *)
        label "gz_extend";
        slti t7 v0 8;
        beq t7 Reg.zero "gz_extend_done";
        add t7 t0 v0;
        bge t7 a1 "gz_extend_done";
        add t7 s0 t7;
        lb t7 0 t7;               (* buf[i+len] *)
        add t3 s0 t6;
        add t3 t3 v0;
        lb t3 0 t3;               (* buf[cand+len] *)
        bne t7 t3 "gz_extend_done";
        addi v0 v0 1;
        j "gz_extend";
        label "gz_extend_done";
        add s2 s2 v0;
        label "gz_next";
        addi t0 t0 1;
        blt t0 a1 "gz_scan";
        halt ])

let profile ~instructions =
  { (Resim_tracegen.Synthetic.balanced ~name ~instructions) with
    loads = 0.27;
    stores = 0.07;
    branches = 0.17;
    calls = 0.0;
    mults = 0.03;
    divides = 0.0;
    dependency_density = 0.4;
    mispredict_rate = 0.055;
    taken_rate = 0.72;
    working_set_bytes = 48 * 1024;
    sequential_locality = 0.65 }
