(** Trace generation from functional simulation — the `sim-bpred` analog.

    Runs the functional interpreter alongside a branch predictor. After
    every conditional branch whose direction the predictor missed, a
    *wrong-path block* of tagged records is appended: the generator
    checkpoints the machine, executes down the wrong path for up to
    [wrong_path_limit] instructions, records them with the Tag Bit set,
    and rolls the machine back — exactly the effect of the paper's
    modified functional simulator. The paper's conservative block size is
    Reorder Buffer entries + IFQ entries.

    Target-only mispredictions (BTB miss / RAS underflow on a
    correctly-predicted direction) are *misfetches*; the paper redirects
    them to the next sequential PC with a fixed penalty, which the timing
    engine models as a front-end stall, so they need no trace records.

    The trace-consuming engine takes its squash events from the trace
    structure itself (a tagged block follows every mispredicted branch),
    which is what keeps a trace-driven simulator aligned with its input by
    construction. *)

type config = {
  predictor : Resim_bpred.Predictor.config;
  wrong_path_limit : int;  (** max tagged records per mispredicted branch *)
  max_instructions : int;  (** correct-path instruction budget *)
}

val default_config : config
(** Paper predictor, wrong-path limit 16 + 4 (ROB + IFQ of the reference
    processor), 1 M instruction budget. *)

type result = {
  records : Resim_trace.Record.t array;
  correct_path : int;       (** untagged records *)
  wrong_path : int;         (** tagged records *)
  mispredicted_branches : int;
  executed_to_completion : bool;
      (** the program halted within the budget *)
}

val run : ?config:config -> Resim_isa.Program.t -> result

val records : ?config:config -> Resim_isa.Program.t -> Resim_trace.Record.t array
(** Convenience projection of {!run}. *)
