lib/tracegen/stream.ml: Generator Queue Resim_bpred Resim_isa Resim_trace
