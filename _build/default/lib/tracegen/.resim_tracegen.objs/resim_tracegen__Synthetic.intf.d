lib/tracegen/synthetic.mli: Resim_trace
