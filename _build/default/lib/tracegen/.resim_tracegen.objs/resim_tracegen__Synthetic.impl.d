lib/tracegen/synthetic.ml: Array Hashtbl List Random Resim_trace
