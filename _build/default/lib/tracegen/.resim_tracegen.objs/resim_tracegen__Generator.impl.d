lib/tracegen/generator.ml: Array List Resim_bpred Resim_isa Resim_trace
