lib/tracegen/stream.mli: Generator Resim_isa Resim_trace
