lib/tracegen/generator.mli: Resim_bpred Resim_isa Resim_trace
