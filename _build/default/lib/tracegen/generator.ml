module Isa = Resim_isa
module Bpred = Resim_bpred
module Trace = Resim_trace

type config = {
  predictor : Bpred.Predictor.config;
  wrong_path_limit : int;
  max_instructions : int;
}

let default_config =
  { predictor = Bpred.Predictor.default_config;
    wrong_path_limit = 16 + 4;
    max_instructions = 1_000_000 }

type result = {
  records : Trace.Record.t array;
  correct_path : int;
  wrong_path : int;
  mispredicted_branches : int;
  executed_to_completion : bool;
}

let run ?(config = default_config) program =
  let machine = Isa.Machine.create ~program () in
  let predictor = Bpred.Predictor.create config.predictor in
  let records = ref [] in
  let count = ref 0 in
  let correct = ref 0 in
  let wrong = ref 0 in
  let mispredicted = ref 0 in
  let emit record = records := record :: !records in
  let wrong_path_block wrong_pc =
    let saved = Isa.Machine.checkpoint machine in
    Isa.Machine.set_pc machine wrong_pc;
    let rec loop emitted =
      if emitted >= config.wrong_path_limit then ()
      else
        match Isa.Interpreter.step machine program with
        | Halted_ -> ()
        | Stepped obs ->
            emit (Trace.Record.of_observation ~wrong_path:true obs);
            incr wrong;
            loop (emitted + 1)
    in
    loop 0;
    Isa.Machine.rollback machine saved
  in
  let completed = ref false in
  let rec step () =
    if !count >= config.max_instructions then ()
    else
      match Isa.Interpreter.step machine program with
      | Halted_ -> completed := true
      | Stepped obs ->
          incr count;
          incr correct;
          emit (Trace.Record.of_observation ~wrong_path:false obs);
          (match obs.control with
          | None -> ()
          | Some { kind; taken; target } ->
              let prediction =
                Bpred.Predictor.predict predictor ~pc:obs.index ~kind
                  ~fallthrough:(obs.index + 1) ~actual_taken:taken
                  ~actual_target:target
              in
              Bpred.Predictor.update predictor ~pc:obs.index ~kind ~taken
                ~target;
              let direction_wrong = prediction.taken <> taken in
              Bpred.Predictor.record_resolution predictor
                ~correct:(not direction_wrong);
              if direction_wrong && kind = Cond then begin
                incr mispredicted;
                (* The front end runs down the path the predictor chose:
                   the static target when it said taken, the fall-through
                   when it said not-taken. *)
                let wrong_pc = if prediction.taken then target else obs.index + 1 in
                wrong_path_block wrong_pc
              end);
          step ()
  in
  step ();
  { records = Array.of_list (List.rev !records);
    correct_path = !correct;
    wrong_path = !wrong;
    mispredicted_branches = !mispredicted;
    executed_to_completion = !completed }

let records ?config program = (run ?config program).records
