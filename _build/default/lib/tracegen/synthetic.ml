module Trace = Resim_trace

type profile = {
  name : string;
  instructions : int;
  loads : float;
  stores : float;
  branches : float;
  calls : float;
  mults : float;
  divides : float;
  dependency_density : float;
  mispredict_rate : float;
  taken_rate : float;
  working_set_bytes : int;
  sequential_locality : float;
  wrong_path_limit : int;
}

let balanced ~name ~instructions =
  { name;
    instructions;
    loads = 0.20;
    stores = 0.10;
    branches = 0.15;
    calls = 0.01;
    mults = 0.01;
    divides = 0.002;
    dependency_density = 0.35;
    mispredict_rate = 0.05;
    taken_rate = 0.6;
    working_set_bytes = 64 * 1024;
    sequential_locality = 0.7;
    wrong_path_limit = 20 }

(* Mutable generation context: program counter, last memory address and
   the ring of recently-written destination registers that implements the
   dependency-density knob. *)
type context = {
  rng : Random.State.t;
  profile : profile;
  mutable pc : int;
  mutable last_addr : int;
  recent : int array;        (* recently written registers *)
  mutable recent_pos : int;
}

let fresh_context ~seed profile =
  { rng = Random.State.make [| seed; Hashtbl.hash profile.name |];
    profile;
    pc = 0;
    last_addr = 4096;
    recent = Array.init 8 (fun i -> 1 + (i mod 31));
    recent_pos = 0 }

let pick_dest ctx =
  let reg = 1 + Random.State.int ctx.rng 31 in
  ctx.recent.(ctx.recent_pos) <- reg;
  ctx.recent_pos <- (ctx.recent_pos + 1) mod Array.length ctx.recent;
  reg

let pick_src ctx =
  if Random.State.float ctx.rng 1.0 < ctx.profile.dependency_density then
    (* A register produced recently: likely still in flight. *)
    ctx.recent.((ctx.recent_pos + Array.length ctx.recent - 1
                 - Random.State.int ctx.rng 2)
                mod Array.length ctx.recent)
  else 1 + Random.State.int ctx.rng 31

let pick_address ctx =
  let addr =
    if Random.State.float ctx.rng 1.0 < ctx.profile.sequential_locality then
      ctx.last_addr + 4
    else 4 * Random.State.int ctx.rng (max 1 (ctx.profile.working_set_bytes / 4))
  in
  let addr = addr mod max 4 ctx.profile.working_set_bytes in
  ctx.last_addr <- addr;
  addr

type shape = Load | Store | Branch | Call | Mult | Divide | Alu

let pick_shape ctx =
  let p = ctx.profile in
  let draw = Random.State.float ctx.rng 1.0 in
  let thresholds =
    [ (p.loads, Load); (p.stores, Store); (p.branches, Branch);
      (p.calls, Call); (p.mults, Mult); (p.divides, Divide) ]
  in
  let rec choose acc = function
    | [] -> Alu
    | (fraction, shape) :: rest ->
        let acc = acc +. fraction in
        if draw < acc then shape else choose acc rest
  in
  choose 0.0 thresholds

let record ctx ~wrong_path shape : Trace.Record.t =
  let pc = ctx.pc in
  let payload, dest, src1, src2 =
    match shape with
    | Load ->
        (Trace.Record.Memory { is_load = true; address = pick_address ctx },
         pick_dest ctx, pick_src ctx, 0)
    | Store ->
        (Trace.Record.Memory { is_load = false; address = pick_address ctx },
         0, pick_src ctx, pick_src ctx)
    | Branch ->
        let taken = Random.State.float ctx.rng 1.0 < ctx.profile.taken_rate in
        (* Mostly short backward loops, occasionally a forward skip. *)
        let target =
          if Random.State.bool ctx.rng then max 0 (pc - 1 - Random.State.int ctx.rng 64)
          else pc + 2 + Random.State.int ctx.rng 16
        in
        (Trace.Record.Branch { kind = Cond; taken; target },
         0, pick_src ctx, pick_src ctx)
    | Call ->
        let target = pc + 16 + Random.State.int ctx.rng 256 in
        (Trace.Record.Branch { kind = Call; taken = true; target },
         31, 0, 0)
    | Mult ->
        (Trace.Record.Other { op_class = Trace.Record.Mult },
         pick_dest ctx, pick_src ctx, pick_src ctx)
    | Divide ->
        (Trace.Record.Other { op_class = Trace.Record.Divide },
         pick_dest ctx, pick_src ctx, pick_src ctx)
    | Alu ->
        (Trace.Record.Other { op_class = Trace.Record.Alu },
         pick_dest ctx, pick_src ctx, pick_src ctx)
  in
  let next_pc =
    match payload with
    | Trace.Record.Branch { taken = true; target; _ } -> target
    | Trace.Record.Branch _ | Trace.Record.Memory _ | Trace.Record.Other _ ->
        pc + 1
  in
  ctx.pc <- next_pc;
  { pc; wrong_path; dest; src1; src2; payload }

let generate ?(seed = 42) profile =
  let ctx = fresh_context ~seed profile in
  let out = ref [] in
  let emit r = out := r :: !out in
  let emitted = ref 0 in
  while !emitted < profile.instructions do
    let shape = pick_shape ctx in
    let r = record ctx ~wrong_path:false shape in
    emit r;
    incr emitted;
    (match r.payload with
    | Trace.Record.Branch { kind = Cond; taken; target } ->
        if Random.State.float ctx.rng 1.0 < profile.mispredict_rate then begin
          (* Wrong-path block: walk the path the branch did not take. *)
          let saved_pc = ctx.pc in
          ctx.pc <- (if taken then r.pc + 1 else target);
          let block = min profile.wrong_path_limit (8 + Random.State.int ctx.rng 8) in
          for _ = 1 to block do
            let shape = pick_shape ctx in
            let wrong =
              match shape with
              | Branch | Call -> record ctx ~wrong_path:true Alu
              | Load | Store | Mult | Divide | Alu ->
                  record ctx ~wrong_path:true shape
            in
            emit wrong
          done;
          ctx.pc <- saved_pc
        end
    | Trace.Record.Branch _ | Trace.Record.Memory _ | Trace.Record.Other _ ->
        ());
    ()
  done;
  Array.of_list (List.rev !out)
