module Isa = Resim_isa
module Bpred = Resim_bpred
module Trace = Resim_trace

type t = {
  config : Generator.config;
  program : Isa.Program.t;
  machine : Isa.Machine.t;
  predictor : Bpred.Predictor.t;
  pending : Trace.Record.t Queue.t;
  mutable correct : int;
  mutable wrong : int;
  mutable mispredicted : int;
  mutable halted : bool;
}

let create ?(config = Generator.default_config) program =
  { config;
    program;
    machine = Isa.Machine.create ~program ();
    predictor = Bpred.Predictor.create config.predictor;
    pending = Queue.create ();
    correct = 0;
    wrong = 0;
    mispredicted = 0;
    halted = false }

(* Speculatively execute the wrong path and queue its tagged records,
   then roll the machine back — same procedure as the batch generator. *)
let queue_wrong_path t ~wrong_pc =
  let saved = Isa.Machine.checkpoint t.machine in
  Isa.Machine.set_pc t.machine wrong_pc;
  let rec loop emitted =
    if emitted >= t.config.wrong_path_limit then ()
    else
      match Isa.Interpreter.step t.machine t.program with
      | Halted_ -> ()
      | Stepped obs ->
          Queue.add (Trace.Record.of_observation ~wrong_path:true obs)
            t.pending;
          t.wrong <- t.wrong + 1;
          loop (emitted + 1)
  in
  loop 0;
  Isa.Machine.rollback t.machine saved

let advance t =
  if t.correct >= t.config.max_instructions then t.halted <- true
  else
    match Isa.Interpreter.step t.machine t.program with
    | Halted_ -> t.halted <- true
    | Stepped obs ->
        t.correct <- t.correct + 1;
        Queue.add (Trace.Record.of_observation ~wrong_path:false obs)
          t.pending;
        (match obs.control with
        | None -> ()
        | Some { kind; taken; target } ->
            let prediction =
              Bpred.Predictor.predict t.predictor ~pc:obs.index ~kind
                ~fallthrough:(obs.index + 1) ~actual_taken:taken
                ~actual_target:target
            in
            Bpred.Predictor.update t.predictor ~pc:obs.index ~kind ~taken
              ~target;
            let direction_wrong = prediction.taken <> taken in
            Bpred.Predictor.record_resolution t.predictor
              ~correct:(not direction_wrong);
            if direction_wrong && kind = Cond then begin
              t.mispredicted <- t.mispredicted + 1;
              let wrong_pc =
                if prediction.taken then target else obs.index + 1
              in
              queue_wrong_path t ~wrong_pc
            end)

let rec pull t =
  match Queue.take_opt t.pending with
  | Some record -> Some record
  | None ->
      if t.halted then None
      else begin
        advance t;
        pull t
      end

let correct_path t = t.correct
let wrong_path t = t.wrong
let mispredicted_branches t = t.mispredicted
let finished t = t.halted && Queue.is_empty t.pending
