(** Statistical trace synthesis.

    Generates a trace directly from a workload *profile* — instruction
    mix, dependency density, branch behaviour and memory locality —
    without running a program. Used for bulk design-space sweeps and for
    workload calibration: the profile parameters map one-to-one onto the
    characteristics that determine IPC in a trace-driven timing model.

    Determinism: generation is driven by a caller-supplied seed; the same
    profile and seed always produce the identical trace. *)

type profile = {
  name : string;
  instructions : int;       (** correct-path length *)
  loads : float;            (** fraction of instructions that are loads *)
  stores : float;           (** ... stores *)
  branches : float;         (** ... conditional branches *)
  calls : float;            (** ... call/return pairs (adds B records) *)
  mults : float;            (** ... multiplies *)
  divides : float;          (** ... divides *)
  dependency_density : float;
      (** probability that a source register was produced within the last
          [width] instructions — higher means less ILP *)
  mispredict_rate : float;  (** fraction of conditional branches followed
                                by a wrong-path block *)
  taken_rate : float;       (** fraction of conditional branches taken *)
  working_set_bytes : int;  (** memory footprint *)
  sequential_locality : float;
      (** probability a memory access strides from the previous one
          (rest are uniform over the working set) *)
  wrong_path_limit : int;
}

val balanced : name:string -> instructions:int -> profile
(** A neutral starting profile (20 % loads, 10 % stores, 15 % branches,
    modest dependency density). *)

val generate : ?seed:int -> profile -> Resim_trace.Record.t array
