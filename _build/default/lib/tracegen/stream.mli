(** Incremental trace generation.

    The pull-based counterpart of {!Generator}: records are produced one
    at a time on demand, so a consumer (the timing engine) can run
    concurrently with functional simulation instead of materialising the
    whole trace first — the paper's future-work idea of producing “the
    trace on the fly directly from a functional simulator” (§VI), as in
    FAST. Wrong-path blocks are synthesised eagerly into an internal
    queue when their branch is generated, so the stream's record order is
    identical to {!Generator.run}'s. *)

type t

val create : ?config:Generator.config -> Resim_isa.Program.t -> t

val pull : t -> Resim_trace.Record.t option
(** Next record, or [None] once the program has halted (or the
    instruction budget is exhausted). *)

(** {1 Progress counters} (valid at any point during streaming) *)

val correct_path : t -> int
val wrong_path : t -> int
val mispredicted_branches : t -> int
val finished : t -> bool
