(** Assembled program images.

    A program is an array of decoded instructions plus a symbol table and
    optional initial data-memory contents. Instruction indices are the
    unit of PCs throughout the simulator; byte addresses derive from
    {!Instruction.byte_address}. *)

type t = {
  code : Instruction.t array;
  entry : int;                       (** entry instruction index *)
  symbols : (string * int) list;     (** label -> instruction index *)
  data : (int * int) list;           (** initial memory: byte addr, value *)
}

val make :
  ?entry:int -> ?symbols:(string * int) list -> ?data:(int * int) list ->
  Instruction.t array -> t

val length : t -> int
(** Number of instructions. *)

val fetch : t -> int -> Instruction.t option
(** [fetch program pc] is the instruction at index [pc], or [None] when
    [pc] is outside the image (running off the end halts execution). *)

val resolve : t -> string -> int
(** [resolve program label] is the instruction index of [label].
    Raises [Not_found] when the label does not exist. *)

val pp : Format.formatter -> t -> unit
(** Disassembly listing. *)
