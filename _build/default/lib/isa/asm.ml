type target = Named of string

type proto = {
  op : Opcode.t;
  dest : Reg.t option;
  src1 : Reg.t option;
  src2 : Reg.t option;
  imm : int;
  target : target option;
}

type stmt = Label of string | Proto of proto | Comment of string

exception Unknown_label of string
exception Duplicate_label of string

let label name = Label name
let comment text = Comment text

let proto ?dest ?src1 ?src2 ?(imm = 0) ?target op =
  Proto { op; dest; src1; src2; imm; target }

let instr (i : Instruction.t) =
  proto ?dest:i.dest ?src1:i.src1 ?src2:i.src2 ~imm:i.imm i.op

let rrr op dest src1 src2 = proto ~dest ~src1 ~src2 op

let add = rrr Opcode.Add
let sub = rrr Opcode.Sub
let and_ = rrr Opcode.And
let or_ = rrr Opcode.Or
let xor = rrr Opcode.Xor
let sll = rrr Opcode.Sll
let srl = rrr Opcode.Srl
let sra = rrr Opcode.Sra
let slt = rrr Opcode.Slt
let mul = rrr Opcode.Mul
let div = rrr Opcode.Div
let rem = rrr Opcode.Rem

let rri op dest src1 imm = proto ~dest ~src1 ~imm op

let addi = rri Opcode.Addi
let andi = rri Opcode.Andi
let ori = rri Opcode.Ori
let xori = rri Opcode.Xori
let slti = rri Opcode.Slti
let lui dest imm = proto ~dest ~imm Opcode.Lui
let li dest imm = proto ~dest ~src1:Reg.zero ~imm Opcode.Addi
let mv dest src = proto ~dest ~src1:src ~src2:Reg.zero Opcode.Add

let lw dest disp base = proto ~dest ~src1:base ~imm:disp Opcode.Lw
let lb dest disp base = proto ~dest ~src1:base ~imm:disp Opcode.Lb

(* Stores read both the base ([src1]) and the value ([src2]). *)
let sw value disp base = proto ~src1:base ~src2:value ~imm:disp Opcode.Sw
let sb value disp base = proto ~src1:base ~src2:value ~imm:disp Opcode.Sb

let branch op src1 src2 name =
  proto ~src1 ~src2 ~target:(Named name) op

let beq = branch Opcode.Beq
let bne = branch Opcode.Bne
let blt = branch Opcode.Blt
let bge = branch Opcode.Bge

let j name = proto ~target:(Named name) Opcode.J
let jal name = proto ~dest:Reg.ra ~target:(Named name) Opcode.Jal
let jr src = proto ~src1:src Opcode.Jr
let jalr dest src = proto ~dest ~src1:src Opcode.Jalr
let nop = proto Opcode.Nop
let halt = proto Opcode.Halt

let t0 = Reg.r 8
let t1 = Reg.r 9
let t2 = Reg.r 10
let t3 = Reg.r 11
let t4 = Reg.r 12
let t5 = Reg.r 13
let t6 = Reg.r 14
let t7 = Reg.r 15
let s0 = Reg.r 16
let s1 = Reg.r 17
let s2 = Reg.r 18
let s3 = Reg.r 19
let a0 = Reg.r 4
let a1 = Reg.r 5
let a2 = Reg.r 6
let v0 = Reg.r 2

let assemble ?entry ?(data = []) stmts =
  (* First pass: bind labels to the index of the following instruction. *)
  let symbols = Hashtbl.create 64 in
  let bind name index =
    if Hashtbl.mem symbols name then raise (Duplicate_label name)
    else Hashtbl.add symbols name index
  in
  let next = ref 0 in
  List.iter
    (function
      | Label name -> bind name !next
      | Proto _ -> incr next
      | Comment _ -> ())
    stmts;
  let resolve = function
    | Named name -> (
        match Hashtbl.find_opt symbols name with
        | Some index -> index
        | None -> raise (Unknown_label name))
  in
  let code =
    List.filter_map
      (function
        | Label _ | Comment _ -> None
        | Proto p ->
            let imm =
              match p.target with
              | Some target -> resolve target
              | None -> p.imm
            in
            Some
              { Instruction.op = p.op; dest = p.dest; src1 = p.src1;
                src2 = p.src2; imm })
      stmts
    |> Array.of_list
  in
  let entry_index =
    match entry with
    | None -> 0
    | Some name -> resolve (Named name)
  in
  let symbol_list =
    Hashtbl.fold (fun name index acc -> (name, index) :: acc) symbols []
    |> List.sort (fun (_, i) (_, j) -> Int.compare i j)
  in
  Program.make ~entry:entry_index ~symbols:symbol_list ~data code
