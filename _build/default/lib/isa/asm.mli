(** Two-pass assembler EDSL.

    Programs are written as OCaml lists of statements; labels are plain
    strings resolved to absolute instruction indices in a second pass.

    {[
      let program =
        Asm.(assemble [
          label "loop";
          addi t0 t0 1;
          blt t0 t1 "loop";
          halt;
        ])
    ]} *)

type stmt

exception Unknown_label of string
exception Duplicate_label of string

(** {1 Labels and raw statements} *)

val label : string -> stmt
val instr : Instruction.t -> stmt
(** Embed a pre-built instruction (no label resolution applied). *)

val comment : string -> stmt
(** Ignored by assembly; useful for listing readability. *)

(** {1 ALU, register-register} *)

val add : Reg.t -> Reg.t -> Reg.t -> stmt
val sub : Reg.t -> Reg.t -> Reg.t -> stmt
val and_ : Reg.t -> Reg.t -> Reg.t -> stmt
val or_ : Reg.t -> Reg.t -> Reg.t -> stmt
val xor : Reg.t -> Reg.t -> Reg.t -> stmt
val sll : Reg.t -> Reg.t -> Reg.t -> stmt
val srl : Reg.t -> Reg.t -> Reg.t -> stmt
val sra : Reg.t -> Reg.t -> Reg.t -> stmt
val slt : Reg.t -> Reg.t -> Reg.t -> stmt
val mul : Reg.t -> Reg.t -> Reg.t -> stmt
val div : Reg.t -> Reg.t -> Reg.t -> stmt
val rem : Reg.t -> Reg.t -> Reg.t -> stmt

(** {1 ALU, immediate} — destination, source, immediate *)

val addi : Reg.t -> Reg.t -> int -> stmt
val andi : Reg.t -> Reg.t -> int -> stmt
val ori : Reg.t -> Reg.t -> int -> stmt
val xori : Reg.t -> Reg.t -> int -> stmt
val slti : Reg.t -> Reg.t -> int -> stmt
val lui : Reg.t -> int -> stmt
val li : Reg.t -> int -> stmt
(** Load immediate (pseudo-op, assembles to [addi dest r0 imm]). *)

val mv : Reg.t -> Reg.t -> stmt
(** Register move (pseudo-op, [add dest src r0]). *)

(** {1 Memory} — register, displacement, base *)

val lw : Reg.t -> int -> Reg.t -> stmt
val sw : Reg.t -> int -> Reg.t -> stmt
val lb : Reg.t -> int -> Reg.t -> stmt
val sb : Reg.t -> int -> Reg.t -> stmt

(** {1 Control flow} *)

val beq : Reg.t -> Reg.t -> string -> stmt
val bne : Reg.t -> Reg.t -> string -> stmt
val blt : Reg.t -> Reg.t -> string -> stmt
val bge : Reg.t -> Reg.t -> string -> stmt
val j : string -> stmt
val jal : string -> stmt
(** Call: links the return address into {!Reg.ra}. *)

val jr : Reg.t -> stmt
(** Indirect jump; [jr Reg.ra] is the conventional return. *)

val jalr : Reg.t -> Reg.t -> stmt
(** Indirect call: [jalr dest target]. *)

val nop : stmt
val halt : stmt

(** {1 Convenient register aliases} *)

val t0 : Reg.t
val t1 : Reg.t
val t2 : Reg.t
val t3 : Reg.t
val t4 : Reg.t
val t5 : Reg.t
val t6 : Reg.t
val t7 : Reg.t
val s0 : Reg.t
val s1 : Reg.t
val s2 : Reg.t
val s3 : Reg.t
val a0 : Reg.t
val a1 : Reg.t
val a2 : Reg.t
val v0 : Reg.t

(** {1 Assembly} *)

val assemble :
  ?entry:string -> ?data:(int * int) list -> stmt list -> Program.t
(** Resolve labels and produce a program image. [entry] defaults to the
    first instruction. Raises {!Unknown_label} for unresolved targets and
    {!Duplicate_label} for labels bound twice. *)
