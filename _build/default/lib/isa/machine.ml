type undo =
  | Reg_was of Reg.t * int
  | Word_was of int * int option
  | Byte_was of int * int option
  | Pc_was of int
  | Halted_was of bool
  | Retired_was of int64

type t = {
  regs : int array;
  words : (int, int) Hashtbl.t;   (* word-aligned byte addr -> value *)
  bytes : (int, int) Hashtbl.t;   (* byte addr -> value, for lb/sb *)
  mutable pc : int;
  mutable halted : bool;
  mutable retired : int64;
  mutable journal : undo list;
  mutable journal_len : int;
  mutable journaling : int;       (* nesting depth of live checkpoints *)
}

type checkpoint = { mark : int }
(* [mark] is the journal length when the checkpoint was taken; rollback
   undoes entries until the journal shrinks back to [mark]. *)

let default_stack_base = 0x7f_f000

let create ?program () =
  let m =
    { regs = Array.make Reg.count 0;
      words = Hashtbl.create 1024;
      bytes = Hashtbl.create 64;
      pc = 0;
      halted = false;
      retired = 0L;
      journal = [];
      journal_len = 0;
      journaling = 0 }
  in
  m.regs.(Reg.to_int Reg.sp) <- default_stack_base;
  (match program with
  | None -> ()
  | Some p ->
      m.pc <- p.Program.entry;
      List.iter (fun (addr, value) -> Hashtbl.replace m.words (addr land lnot 3) value)
        p.Program.data);
  m

let note m entry =
  if m.journaling > 0 then begin
    m.journal <- entry :: m.journal;
    m.journal_len <- m.journal_len + 1
  end

let read_reg m reg = m.regs.(Reg.to_int reg)

let write_reg m reg value =
  if not (Reg.equal reg Reg.zero) then begin
    note m (Reg_was (reg, m.regs.(Reg.to_int reg)));
    m.regs.(Reg.to_int reg) <- value
  end

let align addr = addr land lnot 3

let read_word m addr =
  match Hashtbl.find_opt m.words (align addr) with
  | Some value -> value
  | None -> 0

let write_word m addr value =
  let addr = align addr in
  note m (Word_was (addr, Hashtbl.find_opt m.words addr));
  Hashtbl.replace m.words addr value

let read_byte m addr =
  match Hashtbl.find_opt m.bytes addr with
  | Some value -> value
  | None -> read_word m addr land 0xff

let write_byte m addr value =
  note m (Byte_was (addr, Hashtbl.find_opt m.bytes addr));
  Hashtbl.replace m.bytes addr (value land 0xff)

let pc m = m.pc

let set_pc m value =
  note m (Pc_was m.pc);
  m.pc <- value

let halted m = m.halted

let set_halted m value =
  note m (Halted_was m.halted);
  m.halted <- value

let instructions_retired m = m.retired

let incr_retired m =
  note m (Retired_was m.retired);
  m.retired <- Int64.add m.retired 1L

let checkpoint m =
  m.journaling <- m.journaling + 1;
  { mark = m.journal_len }

let undo_one m = function
  | Reg_was (reg, value) -> m.regs.(Reg.to_int reg) <- value
  | Word_was (addr, Some value) -> Hashtbl.replace m.words addr value
  | Word_was (addr, None) -> Hashtbl.remove m.words addr
  | Byte_was (addr, Some value) -> Hashtbl.replace m.bytes addr value
  | Byte_was (addr, None) -> Hashtbl.remove m.bytes addr
  | Pc_was value -> m.pc <- value
  | Halted_was value -> m.halted <- value
  | Retired_was value -> m.retired <- value

let rec unwind m target =
  if m.journal_len > target then
    match m.journal with
    | [] -> m.journal_len <- 0
    | entry :: rest ->
        m.journal <- rest;
        m.journal_len <- m.journal_len - 1;
        undo_one m entry;
        unwind m target

let reset_if_idle m =
  if m.journaling = 0 then begin
    m.journal <- [];
    m.journal_len <- 0
  end

let rollback m cp =
  unwind m cp.mark;
  m.journaling <- max 0 (m.journaling - 1);
  reset_if_idle m

let discard m cp =
  ignore cp.mark;
  m.journaling <- max 0 (m.journaling - 1);
  reset_if_idle m
