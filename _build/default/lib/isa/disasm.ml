let reg_name reg = Printf.sprintf "r%d" (Reg.to_int reg)

let reg_or_zero reg_opt =
  match reg_opt with
  | Some reg -> reg_name reg
  | None -> "r0"

let target ~label_of index =
  match label_of index with
  | Some label -> label
  | None -> string_of_int index

let instruction ~label_of (instr : Instruction.t) =
  let d = reg_or_zero instr.dest in
  let a = reg_or_zero instr.src1 in
  let b = reg_or_zero instr.src2 in
  let mnemonic = Opcode.mnemonic instr.op in
  match instr.op with
  | Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Mul | Div | Rem ->
      Printf.sprintf "%s %s, %s, %s" mnemonic d a b
  | Addi | Andi | Ori | Xori | Slti ->
      Printf.sprintf "%s %s, %s, %d" mnemonic d a instr.imm
  | Lui -> Printf.sprintf "lui %s, %d" d instr.imm
  | Lw | Lb -> Printf.sprintf "%s %s, %d(%s)" mnemonic d instr.imm a
  | Sw | Sb ->
      (* Stores carry the base in src1 and the value in src2. *)
      Printf.sprintf "%s %s, %d(%s)" mnemonic b instr.imm a
  | Beq | Bne | Blt | Bge ->
      Printf.sprintf "%s %s, %s, %s" mnemonic a b (target ~label_of instr.imm)
  | J -> Printf.sprintf "j %s" (target ~label_of instr.imm)
  | Jal -> Printf.sprintf "jal %s" (target ~label_of instr.imm)
  | Jr -> Printf.sprintf "jr %s" a
  | Jalr -> Printf.sprintf "jalr %s, %s" d a
  | Nop -> "nop"
  | Halt -> "halt"

let control_targets program =
  let targets = Hashtbl.create 16 in
  Array.iter
    (fun (instr : Instruction.t) ->
      match Opcode.branch_kind instr.op with
      | Some (Cond | Jump | Call) -> Hashtbl.replace targets instr.imm ()
      | Some (Ret | Indirect) | None -> ())
    program.Program.code;
  targets

let program (p : Program.t) =
  let targets = control_targets p in
  let label_of index =
    if Hashtbl.mem targets index then Some (Printf.sprintf "L%d" index)
    else None
  in
  let buffer = Buffer.create 1024 in
  if p.entry <> 0 then begin
    Hashtbl.replace targets p.entry ();
    Buffer.add_string buffer (Printf.sprintf ".entry L%d\n" p.entry)
  end;
  List.iter
    (fun (addr, value) ->
      Buffer.add_string buffer (Printf.sprintf ".word %d %d\n" addr value))
    p.data;
  Array.iteri
    (fun index instr ->
      if Hashtbl.mem targets index then
        Buffer.add_string buffer (Printf.sprintf "L%d:\n" index);
      Buffer.add_string buffer "    ";
      Buffer.add_string buffer (instruction ~label_of instr);
      Buffer.add_char buffer '\n')
    p.code;
  (* Targets beyond the last instruction (e.g. a branch to the end). *)
  let beyond = Array.length p.code in
  if Hashtbl.mem targets beyond then
    Buffer.add_string buffer (Printf.sprintf "L%d:\n" beyond);
  Buffer.contents buffer
