(** Disassembler: programs back to the textual syntax of {!Parser}.

    [Parser.parse (Disasm.program p)] reproduces [p]'s instruction array
    exactly (branch targets become generated labels; the entry point and
    initial data are emitted as [.entry]/[.word] directives) for any
    program built through {!Asm} or {!Parser} — a property the test
    suite checks. *)

val instruction : label_of:(int -> string option) -> Instruction.t -> string
(** One instruction in parser syntax; [label_of index] supplies the
    label for a control-flow target. *)

val program : Program.t -> string
(** Full listing with generated [L<n>] labels at every control-flow
    target, plus [.entry] and [.word] directives. *)
