type t = int

let count = 32

let of_int n =
  if n < 0 || n >= count then
    invalid_arg (Printf.sprintf "Reg.of_int: %d out of range" n)
  else n

let to_int reg = reg
let zero = 0
let ra = 31
let sp = 29
let gp = 28
let r = of_int
let equal = Int.equal
let compare = Int.compare
let pp ppf reg = Format.fprintf ppf "r%d" reg
