(** Functional interpreter for the PISA-like ISA.

    [step] executes one instruction and reports everything a trace-driven
    timing simulator needs to know about it: its class, its control-flow
    outcome and its effective address. It performs no timing of its own —
    timing is the job of the ReSim engine. *)

(** Control-flow outcome of an executed instruction. *)
type control = {
  kind : Opcode.branch_kind;
  taken : bool;
  target : int;  (** instruction-index target actually followed when
                     taken; for not-taken branches the would-be target *)
}

(** Everything observed while executing one instruction. *)
type observation = {
  index : int;                    (** instruction index (PC) executed *)
  instr : Instruction.t;
  next_index : int;               (** PC after the instruction *)
  effective_address : int option; (** byte address for loads/stores *)
  control : control option;
}

type outcome =
  | Stepped of observation
  | Halted_
      (** The machine was already halted, a [Halt] executed, or the PC ran
          off the program image. *)

val step : Machine.t -> Program.t -> outcome
(** Execute one instruction at the machine's PC, mutating the machine
    (journaled when a checkpoint is live). [Jr] through {!Reg.ra} is
    classified as [Ret]; other [Jr]/[Jalr] are [Indirect]. *)

val run : ?max_steps:int -> Machine.t -> Program.t -> int
(** Run until halt or [max_steps] (default 10_000_000); returns the
    number of instructions executed. *)
