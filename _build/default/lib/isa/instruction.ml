type t = {
  op : Opcode.t;
  dest : Reg.t option;
  src1 : Reg.t option;
  src2 : Reg.t option;
  imm : int;
}

let bytes_per_instruction = 8
let byte_address index = index * bytes_per_instruction

let make ?dest ?src1 ?src2 ?(imm = 0) op = { op; dest; src1; src2; imm }

let nop = make Opcode.Nop
let halt = make Opcode.Halt

let real_reg reg =
  match reg with
  | Some r when not (Reg.equal r Reg.zero) -> Some r
  | Some _ | None -> None

let sources instr =
  List.filter_map real_reg [ instr.src1; instr.src2 ]

let destination instr = real_reg instr.dest

let pp ppf instr =
  let reg_opt ppf = function
    | Some r -> Format.fprintf ppf " %a" Reg.pp r
    | None -> ()
  in
  Format.fprintf ppf "%a%a%a%a imm=%d" Opcode.pp instr.op reg_opt instr.dest
    reg_opt instr.src1 reg_opt instr.src2 instr.imm
