lib/isa/asm.ml: Array Hashtbl Instruction Int List Opcode Program Reg
