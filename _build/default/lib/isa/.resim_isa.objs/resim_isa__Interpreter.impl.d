lib/isa/interpreter.ml: Instruction Machine Opcode Program Reg
