lib/isa/parser.mli: Program Reg
