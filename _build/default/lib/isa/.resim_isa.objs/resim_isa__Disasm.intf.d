lib/isa/disasm.mli: Instruction Program
