lib/isa/interpreter.mli: Instruction Machine Opcode Program
