lib/isa/asm.mli: Instruction Program Reg
