lib/isa/instruction.mli: Format Opcode Reg
