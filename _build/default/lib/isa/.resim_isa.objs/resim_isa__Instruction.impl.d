lib/isa/instruction.ml: Format List Opcode Reg
