lib/isa/disasm.ml: Array Buffer Hashtbl Instruction List Opcode Printf Program Reg
