lib/isa/parser.ml: Asm Fun List Printf Reg String
