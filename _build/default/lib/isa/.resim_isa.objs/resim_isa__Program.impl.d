lib/isa/program.ml: Array Format Instruction List
