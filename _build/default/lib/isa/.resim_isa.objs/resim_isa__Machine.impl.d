lib/isa/machine.ml: Array Hashtbl Int64 List Program Reg
