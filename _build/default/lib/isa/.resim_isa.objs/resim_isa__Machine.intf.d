lib/isa/machine.mli: Program Reg
