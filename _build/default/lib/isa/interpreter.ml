type control = {
  kind : Opcode.branch_kind;
  taken : bool;
  target : int;
}

type observation = {
  index : int;
  instr : Instruction.t;
  next_index : int;
  effective_address : int option;
  control : control option;
}

type outcome = Stepped of observation | Halted_

let src m reg_opt =
  match reg_opt with
  | Some reg -> Machine.read_reg m reg
  | None -> 0

let write m reg_opt value =
  match reg_opt with
  | Some reg -> Machine.write_reg m reg value
  | None -> ()

(* Shift amounts use the low 5 bits of the operand, as on MIPS. *)
let shift_amount value = value land 31

let alu_result (op : Opcode.t) a b imm =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Sll -> a lsl shift_amount b
  | Srl -> (a land 0xffff_ffff) lsr shift_amount b
  | Sra -> a asr shift_amount b
  | Slt -> if a < b then 1 else 0
  | Addi -> a + imm
  | Andi -> a land imm
  | Ori -> a lor imm
  | Xori -> a lxor imm
  | Slti -> if a < imm then 1 else 0
  | Lui -> imm lsl 16
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b
  | Nop -> 0
  | Lw | Sw | Lb | Sb | Beq | Bne | Blt | Bge
  | J | Jal | Jr | Jalr | Halt ->
      assert false

let step m program =
  if Machine.halted m then Halted_
  else
    let index = Machine.pc m in
    match Program.fetch program index with
    | None ->
        Machine.set_halted m true;
        Halted_
    | Some instr -> (
        let fallthrough = index + 1 in
        let a = src m instr.Instruction.src1
        and b = src m instr.Instruction.src2 in
        let finish ?effective_address ?control next_index =
          Machine.set_pc m next_index;
          Machine.incr_retired m;
          Stepped { index; instr; next_index; effective_address; control }
        in
        let branch kind taken target =
          let next = if taken then target else fallthrough in
          finish ~control:{ kind; taken; target } next
        in
        match instr.op with
        | Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt
        | Addi | Andi | Ori | Xori | Slti | Lui | Mul | Div | Rem | Nop ->
            write m instr.dest (alu_result instr.op a b instr.imm);
            finish fallthrough
        | Halt ->
            Machine.set_halted m true;
            Halted_
        | Lw ->
            let addr = a + instr.imm in
            write m instr.dest (Machine.read_word m addr);
            finish ~effective_address:addr fallthrough
        | Lb ->
            let addr = a + instr.imm in
            write m instr.dest (Machine.read_byte m addr);
            finish ~effective_address:addr fallthrough
        | Sw ->
            let addr = a + instr.imm in
            Machine.write_word m addr b;
            finish ~effective_address:addr fallthrough
        | Sb ->
            let addr = a + instr.imm in
            Machine.write_byte m addr b;
            finish ~effective_address:addr fallthrough
        | Beq -> branch Cond (a = b) instr.imm
        | Bne -> branch Cond (a <> b) instr.imm
        | Blt -> branch Cond (a < b) instr.imm
        | Bge -> branch Cond (a >= b) instr.imm
        | J -> branch Jump true instr.imm
        | Jal ->
            write m instr.dest fallthrough;
            branch Call true instr.imm
        | Jr ->
            let kind : Opcode.branch_kind =
              match instr.src1 with
              | Some reg when Reg.equal reg Reg.ra -> Ret
              | Some _ | None -> Indirect
            in
            branch kind true a
        | Jalr ->
            write m instr.dest fallthrough;
            branch Indirect true a)

let run ?(max_steps = 10_000_000) m program =
  let rec loop executed =
    if executed >= max_steps then executed
    else
      match step m program with
      | Halted_ -> executed
      | Stepped _ -> loop (executed + 1)
  in
  loop 0
