(** Architectural registers of the PISA-like ISA.

    Thirty-two integer registers. [r0] is hardwired to zero: writes to it
    are discarded, reads always return 0. A few registers have
    conventional roles mirroring the MIPS/PISA ABI (stack pointer, return
    address, ...), used by the assembler EDSL and the workloads. *)

type t = private int
(** A register number in [0, 31]. *)

val of_int : int -> t
(** [of_int n] is register [n]. Raises [Invalid_argument] unless
    [0 <= n < count]. *)

val to_int : t -> int

val count : int
(** Number of architectural registers (32). *)

val zero : t
(** [r0], hardwired to zero. *)

val ra : t
(** Return-address register ([r31] by convention). *)

val sp : t
(** Stack-pointer register ([r29] by convention). *)

val gp : t
(** Global-pointer register ([r28] by convention). *)

val r : int -> t
(** Shorthand for {!of_int}. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
