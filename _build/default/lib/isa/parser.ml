exception Parse_error of { line : int; message : string }

let fail ~line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let aliases =
  [ ("zero", 0); ("v0", 2); ("a0", 4); ("a1", 5); ("a2", 6);
    ("t0", 8); ("t1", 9); ("t2", 10); ("t3", 11); ("t4", 12); ("t5", 13);
    ("t6", 14); ("t7", 15);
    ("s0", 16); ("s1", 17); ("s2", 18); ("s3", 19);
    ("gp", 28); ("sp", 29); ("ra", 31) ]

let register_of_string name =
  match List.assoc_opt name aliases with
  | Some number -> Some (Reg.of_int number)
  | None ->
      if String.length name >= 2 && name.[0] = 'r' then
        match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
        | Some number when number >= 0 && number < Reg.count ->
            Some (Reg.of_int number)
        | Some _ | None -> None
      else None

let parse_register ~line token =
  match register_of_string token with
  | Some reg -> reg
  | None -> fail ~line "expected a register, got %S" token

let parse_immediate ~line token =
  match int_of_string_opt token with
  | Some value -> value
  | None -> fail ~line "expected an immediate, got %S" token

(* "8(t0)" -> (8, t0); "(t0)" -> (0, t0). *)
let parse_displacement ~line token =
  match String.index_opt token '(' with
  | None -> fail ~line "expected displacement(base), got %S" token
  | Some open_paren ->
      if token.[String.length token - 1] <> ')' then
        fail ~line "missing ')' in %S" token
      else begin
        let disp_text = String.sub token 0 open_paren in
        let base_text =
          String.sub token (open_paren + 1)
            (String.length token - open_paren - 2)
        in
        let disp =
          if disp_text = "" then 0 else parse_immediate ~line disp_text
        in
        (disp, parse_register ~line base_text)
      end

let strip_comment text =
  let cut position =
    match position with
    | Some i -> String.sub text 0 i
    | None -> text
  in
  cut (String.index_opt text '#') |> fun text ->
  (match String.index_opt text ';' with
  | Some i -> String.sub text 0 i
  | None -> text)

let tokenize text =
  String.split_on_char ' ' (String.map (fun c -> if c = '\t' || c = ',' then ' ' else c) text)
  |> List.filter (fun token -> token <> "")

type directive = Stmt of Asm.stmt list | Entry of string | Data of int * int

let parse_line ~line text =
  let text = String.trim (strip_comment text) in
  if text = "" then []
  else begin
    (* Leading labels: "name:" possibly followed by an instruction. *)
    let rec split_labels acc text =
      match String.index_opt text ':' with
      | Some i
        when i > 0
             && String.for_all
                  (fun c ->
                    c = '_' || c = '.'
                    || (c >= 'a' && c <= 'z')
                    || (c >= 'A' && c <= 'Z')
                    || (c >= '0' && c <= '9'))
                  (String.sub text 0 i) ->
          let label = String.sub text 0 i in
          let rest = String.trim (String.sub text (i + 1) (String.length text - i - 1)) in
          split_labels (label :: acc) rest
      | Some _ | None -> (List.rev acc, text)
    in
    let labels, rest = split_labels [] text in
    let label_stmts = List.map (fun l -> Stmt [ Asm.label l ]) labels in
    if rest = "" then label_stmts
    else begin
      let tokens = tokenize rest in
      let reg = parse_register ~line in
      let imm = parse_immediate ~line in
      let stmt =
        match tokens with
        | [ ".entry"; label ] -> Entry label
        | [ ".word"; addr; value ] -> Data (imm addr, imm value)
        | [ op; d; a; b ]
          when List.mem op
                 [ "add"; "sub"; "and"; "or"; "xor"; "sll"; "srl"; "sra";
                   "slt"; "mul"; "div"; "rem" ] ->
            let build =
              match op with
              | "add" -> Asm.add | "sub" -> Asm.sub | "and" -> Asm.and_
              | "or" -> Asm.or_ | "xor" -> Asm.xor | "sll" -> Asm.sll
              | "srl" -> Asm.srl | "sra" -> Asm.sra | "slt" -> Asm.slt
              | "mul" -> Asm.mul | "div" -> Asm.div | _ -> Asm.rem
            in
            Stmt [ build (reg d) (reg a) (reg b) ]
        | [ op; d; a; value ]
          when List.mem op [ "addi"; "andi"; "ori"; "xori"; "slti" ] ->
            let build =
              match op with
              | "addi" -> Asm.addi | "andi" -> Asm.andi | "ori" -> Asm.ori
              | "xori" -> Asm.xori | _ -> Asm.slti
            in
            Stmt [ build (reg d) (reg a) (imm value) ]
        | [ "lui"; d; value ] -> Stmt [ Asm.lui (reg d) (imm value) ]
        | [ "li"; d; value ] -> Stmt [ Asm.li (reg d) (imm value) ]
        | [ "mv"; d; s ] -> Stmt [ Asm.mv (reg d) (reg s) ]
        | [ op; r; address ] when List.mem op [ "lw"; "lb"; "sw"; "sb" ] ->
            let disp, base = parse_displacement ~line address in
            let build =
              match op with
              | "lw" -> Asm.lw | "lb" -> Asm.lb | "sw" -> Asm.sw
              | _ -> Asm.sb
            in
            Stmt [ build (reg r) disp base ]
        | [ op; a; b; target ]
          when List.mem op [ "beq"; "bne"; "blt"; "bge" ] ->
            let build =
              match op with
              | "beq" -> Asm.beq | "bne" -> Asm.bne | "blt" -> Asm.blt
              | _ -> Asm.bge
            in
            Stmt [ build (reg a) (reg b) target ]
        | [ "j"; target ] -> Stmt [ Asm.j target ]
        | [ "jal"; target ] -> Stmt [ Asm.jal target ]
        | [ "jr"; source ] -> Stmt [ Asm.jr (reg source) ]
        | [ "jalr"; d; source ] -> Stmt [ Asm.jalr (reg d) (reg source) ]
        | [ "nop" ] -> Stmt [ Asm.nop ]
        | [ "halt" ] -> Stmt [ Asm.halt ]
        | op :: _ -> fail ~line "cannot parse %S instruction here" op
        | [] -> Stmt []
      in
      label_stmts @ [ stmt ]
    end
  end

let parse source =
  let lines = String.split_on_char '\n' source in
  let directives =
    List.concat (List.mapi (fun i text -> parse_line ~line:(i + 1) text) lines)
  in
  let stmts =
    List.concat_map (function Stmt s -> s | Entry _ | Data _ -> []) directives
  in
  let entry =
    List.fold_left
      (fun acc directive ->
        match directive with Entry label -> Some label | Stmt _ | Data _ -> acc)
      None directives
  in
  let data =
    List.filter_map
      (function Data (addr, value) -> Some (addr, value) | Stmt _ | Entry _ -> None)
      directives
  in
  Asm.assemble ?entry ~data stmts

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))
