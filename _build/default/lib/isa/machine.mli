(** Architectural machine state with speculative checkpoints.

    Registers, a sparse byte-addressed data memory, the program counter
    and a halt flag. The trace generator executes *wrong-path* code after
    mispredicted branches; {!checkpoint}/{!rollback} provide the required
    undo capability through a write journal, so arbitrarily long wrong
    paths can be unwound exactly. *)

type t

val create : ?program:Program.t -> unit -> t
(** Fresh state: registers zero, memory loaded from the program's [data]
    section, PC at the program entry, stack pointer initialised to
    {!default_stack_base}. *)

val default_stack_base : int

(** {1 Registers} *)

val read_reg : t -> Reg.t -> int
val write_reg : t -> Reg.t -> int -> unit
(** Writing {!Reg.zero} is a no-op. *)

(** {1 Memory}

    Byte-addressed. Words are stored at 4-byte granularity; [read_word]
    of a never-written address is 0. *)

val read_word : t -> int -> int
val write_word : t -> int -> int -> unit
val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit

(** {1 Control} *)

val pc : t -> int
val set_pc : t -> int -> unit
val halted : t -> bool
val set_halted : t -> bool -> unit
val instructions_retired : t -> int64
val incr_retired : t -> unit

(** {1 Speculation} *)

type checkpoint

val checkpoint : t -> checkpoint
(** Start (or nest) journaling; every subsequent register/memory/PC/halt
    mutation is recorded until the matching {!rollback} or {!discard}. *)

val rollback : t -> checkpoint -> unit
(** Undo every mutation performed since the checkpoint was taken. *)

val discard : t -> checkpoint -> unit
(** Commit the speculative work: drop the journal entries belonging to the
    checkpoint without undoing them. *)
