(** Decoded instructions.

    After assembly every control-flow target is an absolute instruction
    index stored in [imm]; memory displacements and ALU immediates also
    live in [imm]. Instructions occupy {!bytes_per_instruction} bytes in
    the simulated address space (PISA uses 8-byte encodings), so the byte
    address of instruction [i] is [i * bytes_per_instruction]. *)

type t = {
  op : Opcode.t;
  dest : Reg.t option;  (** destination register, if any *)
  src1 : Reg.t option;  (** first source, if any *)
  src2 : Reg.t option;  (** second source, if any *)
  imm : int;            (** immediate / displacement / absolute target *)
}

val bytes_per_instruction : int
(** 8, as in SimpleScalar PISA. *)

val byte_address : int -> int
(** [byte_address index] is the simulated byte address of the instruction
    at [index]. *)

val make :
  ?dest:Reg.t -> ?src1:Reg.t -> ?src2:Reg.t -> ?imm:int -> Opcode.t -> t

val nop : t
val halt : t

val sources : t -> Reg.t list
(** Source registers actually read (excluding [r0], which is never a
    dependency). *)

val destination : t -> Reg.t option
(** Destination register actually written ([r0] writes are discarded and
    reported as [None]). *)

val pp : Format.formatter -> t -> unit
