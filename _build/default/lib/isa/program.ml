type t = {
  code : Instruction.t array;
  entry : int;
  symbols : (string * int) list;
  data : (int * int) list;
}

let make ?(entry = 0) ?(symbols = []) ?(data = []) code =
  { code; entry; symbols; data }

let length program = Array.length program.code

let fetch program pc =
  if pc < 0 || pc >= Array.length program.code then None
  else Some program.code.(pc)

let resolve program label = List.assoc label program.symbols

let pp ppf program =
  let name_of index =
    List.filter_map
      (fun (label, target) -> if target = index then Some label else None)
      program.symbols
  in
  Array.iteri
    (fun index instr ->
      List.iter (fun label -> Format.fprintf ppf "%s:@." label)
        (name_of index);
      Format.fprintf ppf "  %4d: %a@." index Instruction.pp instr)
    program.code
