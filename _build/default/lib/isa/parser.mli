(** Textual assembly parser.

    Accepts the conventional notation for the PISA-like ISA, one
    statement per line:

    {v
    # a comment ('#' or ';' to end of line)
    main:                     # labels end with ':'
        li   t0, 42
        addi t1, t0, -3
        lw   t2, 8(t0)        # displacement(base)
        sw   t2, 0(sp)
        beq  t0, t1, done
        jal  subroutine
        j    main
    done:
        halt
    .entry main               # optional entry point
    .word 0x1000 7            # initial data memory (address value)
    v}

    Registers are written [r0]–[r31] or by alias ([zero], [ra], [sp],
    [gp], [v0], [a0]–[a2], [t0]–[t7], [s0]–[s3]). Immediates accept
    decimal and [0x]/[0o]/[0b] literals, with an optional sign. *)

exception Parse_error of { line : int; message : string }
(** Raised with a 1-based source line number. *)

val parse : string -> Program.t
(** Parse a whole source text. Raises {!Parse_error} on syntax errors
    and {!Asm.Unknown_label}/{!Asm.Duplicate_label} on label errors. *)

val parse_file : string -> Program.t

val register_of_string : string -> Reg.t option
(** Exposed for tooling/tests: resolve a register name or alias. *)
