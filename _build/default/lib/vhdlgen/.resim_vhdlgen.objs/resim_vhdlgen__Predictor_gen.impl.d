lib/vhdlgen/predictor_gen.ml: Fun List Printf Resim_bpred String Vhdl
