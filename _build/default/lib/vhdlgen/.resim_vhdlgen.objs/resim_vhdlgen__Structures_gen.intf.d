lib/vhdlgen/structures_gen.mli: Resim_core
