lib/vhdlgen/vhdl.ml: Buffer List Printf String
