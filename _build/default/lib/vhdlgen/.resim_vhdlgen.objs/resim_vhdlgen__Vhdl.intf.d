lib/vhdlgen/vhdl.mli:
