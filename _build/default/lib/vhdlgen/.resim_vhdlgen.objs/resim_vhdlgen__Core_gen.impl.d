lib/vhdlgen/core_gen.ml: Filename Fun List Predictor_gen Printf Resim_core String Structures_gen Sys Vhdl
