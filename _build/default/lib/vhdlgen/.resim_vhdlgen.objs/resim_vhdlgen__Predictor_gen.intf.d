lib/vhdlgen/predictor_gen.mli: Resim_bpred
