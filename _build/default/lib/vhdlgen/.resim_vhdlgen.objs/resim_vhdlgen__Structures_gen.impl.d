lib/vhdlgen/structures_gen.ml: Printf Resim_core Resim_isa Vhdl
