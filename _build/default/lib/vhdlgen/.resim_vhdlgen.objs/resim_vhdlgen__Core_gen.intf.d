lib/vhdlgen/core_gen.mli: Resim_core
