(** Tiny VHDL emission helpers shared by the generators: entities with
    generics and ports, signal declarations, processes, and the numeric
    utilities (log2 widths) parametric hardware needs. All output is
    VHDL-93 with numeric_std. *)

type port_direction = In | Out

type port = { port_name : string; direction : port_direction; port_type : string }

type generic = { generic_name : string; generic_type : string; default : string }

val bits_for : int -> int
(** Address width for a structure of [n] entries: [ceil(log2 n)], at
    least 1. *)

val header : description:string -> string
(** File banner + library/use clauses. *)

val entity :
  name:string -> ?generics:generic list -> ports:port list -> unit -> string

val architecture : name:string -> of_entity:string -> body:string -> string
(** [body] is placed between [begin] and [end]; declarations go inside
    [body]'s prefix via {!declarations}. *)

val declarations : string list -> string
(** Joins declaration lines for the architecture declarative part; pass
    as part of a custom architecture when needed. *)

val std_logic_vector : int -> string
(** ["std_logic_vector(<width-1> downto 0)"]. *)

val unsigned_type : int -> string
