(** VHDL generation for the parametric storage structures.

    §III: “ReSim is designed to be parametrizable … coding ReSim in
    parametrizable VHDL”. These generators emit the storage blocks the
    stages are built from: the circular queues (IFQ, decouple buffer)
    and the rename table. Depths and widths are baked in per
    configuration, like the predictor generators. *)

val circular_queue : name:string -> depth:int -> payload_bits:int -> string
(** A synchronous FIFO with [depth] entries of [payload_bits] bits:
    enqueue/dequeue ports, full/empty flags, occupancy count — the IFQ
    and decouple buffer shape. *)

val rename_table : registers:int -> rob_entries:int -> string
(** Architectural-register → producing-ROB-entry map with a valid bit
    per register, two read ports (src1/src2), one define port and one
    clear port, plus the whole-table flush used at squash. *)

val structures : Resim_core.Config.t -> (string * string) list
(** The queues and rename table for a configuration, as
    (filename, contents). *)
