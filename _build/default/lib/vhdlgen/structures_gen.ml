let circular_queue ~name ~depth ~payload_bits =
  let body =
    Printf.sprintf
      "  -- %d-entry circular queue of %d-bit payloads.\n\
      \  type storage_t is array (0 to %d) of std_logic_vector(%d downto 0);\n\
      \  signal storage : storage_t := (others => (others => '0'));\n\
      \  signal head : integer range 0 to %d := 0;\n\
      \  signal tail : integer range 0 to %d := 0;\n\
      \  signal count : integer range 0 to %d := 0;\n\
       begin\n\
      \  full <= '1' when count = %d else '0';\n\
      \  empty <= '1' when count = 0 else '0';\n\
      \  head_data <= storage(head);\n\
      \  occupancy <= std_logic_vector(to_unsigned(count, %d));\n\n\
      \  queue_ops : process (clk)\n\
      \  begin\n\
      \    if rising_edge(clk) then\n\
      \      if flush = '1' then\n\
      \        head <= 0; tail <= 0; count <= 0;\n\
      \      else\n\
      \        if enqueue = '1' and count < %d then\n\
      \          storage(tail) <= enqueue_data;\n\
      \          tail <= (tail + 1) mod %d;\n\
      \        end if;\n\
      \        if dequeue = '1' and count > 0 then\n\
      \          head <= (head + 1) mod %d;\n\
      \        end if;\n\
      \        if enqueue = '1' and dequeue = '0' and count < %d then\n\
      \          count <= count + 1;\n\
      \        elsif dequeue = '1' and enqueue = '0' and count > 0 then\n\
      \          count <= count - 1;\n\
      \        end if;\n\
      \      end if;\n\
      \    end if;\n\
      \  end process queue_ops;"
      depth payload_bits (depth - 1) (payload_bits - 1) (depth - 1)
      (depth - 1) depth depth
      (Vhdl.bits_for (depth + 1))
      depth depth depth depth
  in
  Vhdl.header
    ~description:
      (Printf.sprintf "%s: %d x %d-bit circular queue" name depth
         payload_bits)
  ^ Vhdl.entity ~name
      ~ports:
        Vhdl.
          [ { port_name = "clk"; direction = In; port_type = "std_logic" };
            { port_name = "flush"; direction = In; port_type = "std_logic" };
            { port_name = "enqueue"; direction = In; port_type = "std_logic" };
            { port_name = "enqueue_data"; direction = In;
              port_type = std_logic_vector payload_bits };
            { port_name = "dequeue"; direction = In; port_type = "std_logic" };
            { port_name = "head_data"; direction = Out;
              port_type = std_logic_vector payload_bits };
            { port_name = "full"; direction = Out; port_type = "std_logic" };
            { port_name = "empty"; direction = Out; port_type = "std_logic" };
            { port_name = "occupancy"; direction = Out;
              port_type = std_logic_vector (Vhdl.bits_for (depth + 1)) } ]
      ()
  ^ Vhdl.architecture ~name:"rtl" ~of_entity:name ~body

let rename_table ~registers ~rob_entries =
  let reg_bits = Vhdl.bits_for registers in
  let rob_bits = Vhdl.bits_for rob_entries in
  let body =
    Printf.sprintf
      "  -- %d architectural registers -> %d-entry ROB tags.\n\
      \  type tag_array_t is array (0 to %d) of std_logic_vector(%d downto 0);\n\
      \  signal tags  : tag_array_t := (others => (others => '0'));\n\
      \  signal valid : std_logic_vector(0 to %d) := (others => '0');\n\
       begin\n\
      \  src1_tag   <= tags(to_integer(unsigned(src1_reg)));\n\
      \  src1_valid <= valid(to_integer(unsigned(src1_reg)));\n\
      \  src2_tag   <= tags(to_integer(unsigned(src2_reg)));\n\
      \  src2_valid <= valid(to_integer(unsigned(src2_reg)));\n\n\
      \  table_ops : process (clk)\n\
      \    variable slot : integer range 0 to %d;\n\
      \  begin\n\
      \    if rising_edge(clk) then\n\
      \      if flush = '1' then\n\
      \        valid <= (others => '0');\n\
      \      else\n\
      \        if clear_en = '1' then\n\
      \          slot := to_integer(unsigned(clear_reg));\n\
      \          if tags(slot) = clear_tag then\n\
      \            valid(slot) <= '0';\n\
      \          end if;\n\
      \        end if;\n\
      \        -- Define wins over a same-cycle clear of the same register.\n\
      \        if define_en = '1' then\n\
      \          slot := to_integer(unsigned(define_reg));\n\
      \          tags(slot) <= define_tag;\n\
      \          valid(slot) <= '1';\n\
      \        end if;\n\
      \      end if;\n\
      \    end if;\n\
      \  end process table_ops;"
      registers rob_entries (registers - 1) (rob_bits - 1) (registers - 1)
      (registers - 1)
  in
  Vhdl.header
    ~description:
      (Printf.sprintf "rename table: %d registers, %d-entry ROB" registers
         rob_entries)
  ^ Vhdl.entity ~name:"rename_table"
      ~ports:
        Vhdl.
          [ { port_name = "clk"; direction = In; port_type = "std_logic" };
            { port_name = "flush"; direction = In; port_type = "std_logic" };
            { port_name = "src1_reg"; direction = In;
              port_type = std_logic_vector reg_bits };
            { port_name = "src1_tag"; direction = Out;
              port_type = std_logic_vector rob_bits };
            { port_name = "src1_valid"; direction = Out;
              port_type = "std_logic" };
            { port_name = "src2_reg"; direction = In;
              port_type = std_logic_vector reg_bits };
            { port_name = "src2_tag"; direction = Out;
              port_type = std_logic_vector rob_bits };
            { port_name = "src2_valid"; direction = Out;
              port_type = "std_logic" };
            { port_name = "define_en"; direction = In;
              port_type = "std_logic" };
            { port_name = "define_reg"; direction = In;
              port_type = std_logic_vector reg_bits };
            { port_name = "define_tag"; direction = In;
              port_type = std_logic_vector rob_bits };
            { port_name = "clear_en"; direction = In;
              port_type = "std_logic" };
            { port_name = "clear_reg"; direction = In;
              port_type = std_logic_vector reg_bits };
            { port_name = "clear_tag"; direction = In;
              port_type = std_logic_vector rob_bits } ]
      ()
  ^ Vhdl.architecture ~name:"rtl" ~of_entity:"rename_table" ~body

(* The pre-decoded record width in the queues: opcode class, registers
   and a compressed target/address field — matches the trace format's
   fixed layout. *)
let record_bits = 48

let structures (config : Resim_core.Config.t) =
  [ ("ifq.vhd",
     circular_queue ~name:"ifq" ~depth:config.ifq_entries
       ~payload_bits:record_bits);
    ("decouple_buffer.vhd",
     circular_queue ~name:"decouple_buffer" ~depth:config.decouple_entries
       ~payload_bits:record_bits);
    ("rename_table.vhd",
     rename_table ~registers:Resim_isa.Reg.count
       ~rob_entries:config.rob_entries) ]
