(** Generation of the per-configuration parameter package and the full
    bundle — the “software tool that would automatically produce custom
    ReSim versions according to user parameters” named as future work in
    §VI of the paper. *)

val params_package : Resim_core.Config.t -> string
(** [resim_params.vhd]: a package of constants (width, queue depths,
    port counts, penalties, minor-cycle latency) that the hand-written
    stage entities would import. *)

val generate_all : Resim_core.Config.t -> (string * string) list
(** Parameter package, the predictor unit and the storage structures
    (IFQ, decouple buffer, rename table), as (filename, contents)
    pairs. *)

val write_all : dir:string -> Resim_core.Config.t -> string list
(** Write the bundle into [dir] (created if missing); returns paths. *)
