let pc_width = 30

let predictor_ports =
  Vhdl.
    [ { port_name = "clk"; direction = In; port_type = "std_logic" };
      { port_name = "reset"; direction = In; port_type = "std_logic" };
      { port_name = "predict_pc"; direction = In;
        port_type = std_logic_vector pc_width };
      { port_name = "actual_outcome"; direction = In;
        port_type = "std_logic" };
      { port_name = "prediction"; direction = Out; port_type = "std_logic" };
      { port_name = "update_en"; direction = In; port_type = "std_logic" };
      { port_name = "update_pc"; direction = In;
        port_type = std_logic_vector pc_width };
      { port_name = "update_taken"; direction = In; port_type = "std_logic" }
    ]

(* Saturating 2-bit counter training, shared by every table-based
   architecture; [slot] is a VHDL lvalue for the counter. *)
let train_counter slot =
  Printf.sprintf
    "      if update_taken = '1' then\n\
    \        if %s /= \"11\" then %s <= %s + 1; end if;\n\
    \      else\n\
    \        if %s /= \"00\" then %s <= %s - 1; end if;\n\
    \      end if;"
    slot slot slot slot slot slot

let fixed_architecture expression =
  Vhdl.architecture ~name:"rtl" ~of_entity:"direction_predictor"
    ~body:
      (Printf.sprintf "begin\n  prediction <= %s;" expression)

let bimodal_architecture ~table_entries =
  let index_bits = Vhdl.bits_for table_entries in
  let body =
    Printf.sprintf
      "  type counter_table_t is array (0 to %d) of unsigned(1 downto 0);\n\
      \  signal counters : counter_table_t := (others => \"10\");\n\
       begin\n\
      \  prediction <=\n\
      \    counters(to_integer(unsigned(predict_pc(%d downto 0))))(1);\n\n\
      \  train : process (clk)\n\
      \    variable slot : integer range 0 to %d;\n\
      \  begin\n\
      \    if rising_edge(clk) and update_en = '1' then\n\
      \      slot := to_integer(unsigned(update_pc(%d downto 0)));\n\
       %s\n\
      \    end if;\n\
      \  end process train;"
      (table_entries - 1) (index_bits - 1) (table_entries - 1)
      (index_bits - 1)
      (train_counter "counters(slot)")
  in
  Vhdl.architecture ~name:"rtl" ~of_entity:"direction_predictor" ~body

let two_level_architecture ~bht_entries ~history_bits ~pht_entries =
  let bht_index_bits = Vhdl.bits_for bht_entries in
  let pht_index_bits = Vhdl.bits_for pht_entries in
  let pc_bits = max 0 (pht_index_bits - history_bits) in
  let pht_index source =
    if pc_bits = 0 then
      Printf.sprintf "to_integer(%s) mod %d" source pht_entries
    else
      Printf.sprintf
        "to_integer(%s & unsigned(%s(%d downto 0))) mod %d" source
        (if source = "predict_history" then "predict_pc" else "update_pc")
        (pc_bits - 1) pht_entries
  in
  let body =
    Printf.sprintf
      "  -- Two-level predictor: %d-entry BHT of %d-bit histories, \
       %d-entry PHT.\n\
      \  type bht_t is array (0 to %d) of unsigned(%d downto 0);\n\
      \  type pht_t is array (0 to %d) of unsigned(1 downto 0);\n\
      \  signal bht : bht_t := (others => (others => '0'));\n\
      \  signal pht : pht_t := (others => \"10\");\n\
      \  signal predict_history : unsigned(%d downto 0);\n\
       begin\n\
      \  predict_history <=\n\
      \    bht(to_integer(unsigned(predict_pc(%d downto 0))) mod %d);\n\
      \  prediction <= pht(%s)(1);\n\n\
      \  train : process (clk)\n\
      \    variable bht_slot : integer range 0 to %d;\n\
      \    variable history : unsigned(%d downto 0);\n\
      \    variable pht_slot : integer range 0 to %d;\n\
      \  begin\n\
      \    if rising_edge(clk) and update_en = '1' then\n\
      \      bht_slot := to_integer(unsigned(update_pc(%d downto 0))) mod %d;\n\
      \      history := bht(bht_slot);\n\
      \      pht_slot := %s;\n\
       %s\n\
      \      bht(bht_slot) <=\n\
      \        history(%d downto 0) & update_taken;\n\
      \    end if;\n\
      \  end process train;"
      bht_entries history_bits pht_entries (bht_entries - 1)
      (history_bits - 1) (pht_entries - 1) (history_bits - 1)
      (bht_index_bits - 1) bht_entries
      (pht_index "predict_history")
      (bht_entries - 1) (history_bits - 1) (pht_entries - 1)
      (bht_index_bits - 1) bht_entries
      (pht_index "history")
      (train_counter "pht(pht_slot)")
      (history_bits - 2)
  in
  Vhdl.architecture ~name:"rtl" ~of_entity:"direction_predictor" ~body

let gshare_architecture ~history_bits ~pht_entries =
  let body =
    Printf.sprintf
      "  -- Gshare: one %d-bit global history xor-folded with the PC.\n\
      \  type pht_t is array (0 to %d) of unsigned(1 downto 0);\n\
      \  signal pht : pht_t := (others => \"10\");\n\
      \  signal ghr : unsigned(%d downto 0) := (others => '0');\n\
       begin\n\
      \  prediction <=\n\
      \    pht((to_integer(ghr xor unsigned(predict_pc(%d downto 0)))) mod %d)(1);\n\n\
      \  train : process (clk)\n\
      \    variable pht_slot : integer range 0 to %d;\n\
      \  begin\n\
      \    if rising_edge(clk) and update_en = '1' then\n\
      \      pht_slot :=\n\
      \        (to_integer(ghr xor unsigned(update_pc(%d downto 0)))) mod %d;\n\
       %s\n\
      \      ghr <= ghr(%d downto 0) & update_taken;\n\
      \    end if;\n\
      \  end process train;"
      history_bits (pht_entries - 1) (history_bits - 1) (history_bits - 1)
      pht_entries (pht_entries - 1) (history_bits - 1) pht_entries
      (train_counter "pht(pht_slot)")
      (history_bits - 2)
  in
  Vhdl.architecture ~name:"rtl" ~of_entity:"direction_predictor" ~body

let direction_predictor (config : Resim_bpred.Direction.config) =
  let description =
    match config with
    | Perfect -> "direction predictor: perfect oracle"
    | Static_taken -> "direction predictor: static taken"
    | Static_not_taken -> "direction predictor: static not-taken"
    | Bimodal { table_entries } ->
        Printf.sprintf "direction predictor: bimodal, %d counters"
          table_entries
    | Two_level { bht_entries; history_bits; pht_entries } ->
        Printf.sprintf "direction predictor: two-level %d/%d/%d" bht_entries
          history_bits pht_entries
    | Gshare { history_bits; pht_entries } ->
        Printf.sprintf "direction predictor: gshare %d/%d" history_bits
          pht_entries
  in
  let architecture =
    match config with
    | Perfect -> fixed_architecture "actual_outcome"
    | Static_taken -> fixed_architecture "'1'"
    | Static_not_taken -> fixed_architecture "'0'"
    | Bimodal { table_entries } -> bimodal_architecture ~table_entries
    | Two_level { bht_entries; history_bits; pht_entries } ->
        two_level_architecture ~bht_entries ~history_bits ~pht_entries
    | Gshare { history_bits; pht_entries } ->
        gshare_architecture ~history_bits ~pht_entries
  in
  Vhdl.header ~description
  ^ Vhdl.entity ~name:"direction_predictor" ~ports:predictor_ports ()
  ^ architecture

let btb (config : Resim_bpred.Btb.config) =
  let sets = config.entries / config.associativity in
  let set_bits = Vhdl.bits_for sets in
  let tag_bits = pc_width - set_bits in
  let way_arrays =
    String.concat "\n"
      (List.concat_map
         (fun way ->
           [ Printf.sprintf
               "  signal tags_%d    : tag_array_t := (others => \
                (others => '0'));"
               way;
             Printf.sprintf
               "  signal targets_%d : target_array_t := (others => \
                (others => '0'));"
               way;
             Printf.sprintf
               "  signal valid_%d   : std_logic_vector(0 to %d) := \
                (others => '0');"
               way (sets - 1) ])
         (List.init config.associativity Fun.id))
  in
  let way_hit index way =
    Printf.sprintf
      "    %s valid_%d(set) = '1' and tags_%d(set) = tag then\n\
      \      hit <= '1'; target <= targets_%d(set);"
      (if index = 0 then "if" else "elsif")
      way way way
  in
  let hits =
    String.concat "\n"
      (List.mapi way_hit (List.init config.associativity Fun.id))
  in
  let update_ways =
    String.concat "\n"
      (List.map
         (fun way ->
           Printf.sprintf
             "        if victim = %d then\n\
             \          tags_%d(uset) <= utag; targets_%d(uset) <= \
              update_target; valid_%d(uset) <= '1';\n\
             \        end if;"
             way way way way)
         (List.init config.associativity Fun.id))
  in
  let body =
    Printf.sprintf
      "  -- %d entries, %d-way: %d sets of %d-bit tags.\n\
      \  subtype tag_t is std_logic_vector(%d downto 0);\n\
      \  subtype target_t is std_logic_vector(%d downto 0);\n\
      \  type tag_array_t is array (0 to %d) of tag_t;\n\
      \  type target_array_t is array (0 to %d) of target_t;\n\
       %s\n\
      \  signal replace_ptr : integer range 0 to %d := 0;\n\
       begin\n\
      \  lookup : process (predict_pc, %s)\n\
      \    variable set : integer range 0 to %d;\n\
      \    variable tag : tag_t;\n\
      \  begin\n\
      \    set := to_integer(unsigned(predict_pc(%d downto 0)));\n\
      \    tag := predict_pc(%d downto %d);\n\
      \    hit <= '0'; target <= (others => '0');\n\
       %s\n\
      \    end if;\n\
      \  end process lookup;\n\n\
      \  install : process (clk)\n\
      \    variable uset : integer range 0 to %d;\n\
      \    variable utag : tag_t;\n\
      \    variable victim : integer range 0 to %d;\n\
      \  begin\n\
      \    if rising_edge(clk) and update_en = '1' then\n\
      \      uset := to_integer(unsigned(update_pc(%d downto 0)));\n\
      \      utag := update_pc(%d downto %d);\n\
      \      victim := replace_ptr;\n\
       %s\n\
      \      replace_ptr <= (replace_ptr + 1) mod %d;\n\
      \    end if;\n\
      \  end process install;"
      config.entries config.associativity sets tag_bits (tag_bits - 1)
      (pc_width - 1) (sets - 1) (sets - 1) way_arrays
      (config.associativity - 1)
      (String.concat ", "
         (List.concat_map
            (fun way ->
              [ Printf.sprintf "tags_%d" way;
                Printf.sprintf "targets_%d" way;
                Printf.sprintf "valid_%d" way ])
            (List.init config.associativity Fun.id)))
      (sets - 1) (set_bits - 1) (pc_width - 1) set_bits hits (sets - 1)
      (config.associativity - 1)
      (set_bits - 1) (pc_width - 1) set_bits update_ways
      config.associativity
  in
  Vhdl.header
    ~description:
      (Printf.sprintf "branch target buffer: %d entries, %d-way"
         config.entries config.associativity)
  ^ Vhdl.entity ~name:"btb"
      ~ports:
        Vhdl.
          [ { port_name = "clk"; direction = In; port_type = "std_logic" };
            { port_name = "predict_pc"; direction = In;
              port_type = std_logic_vector pc_width };
            { port_name = "hit"; direction = Out; port_type = "std_logic" };
            { port_name = "target"; direction = Out;
              port_type = std_logic_vector pc_width };
            { port_name = "update_en"; direction = In;
              port_type = "std_logic" };
            { port_name = "update_pc"; direction = In;
              port_type = std_logic_vector pc_width };
            { port_name = "update_target"; direction = In;
              port_type = std_logic_vector pc_width } ]
      ()
  ^ Vhdl.architecture ~name:"rtl" ~of_entity:"btb" ~body

let ras ~depth =
  let body =
    Printf.sprintf
      "  -- %d-entry circular return-address stack.\n\
      \  type stack_t is array (0 to %d) of std_logic_vector(%d downto 0);\n\
      \  signal stack : stack_t := (others => (others => '0'));\n\
      \  signal top : integer range 0 to %d := 0;\n\
      \  signal occupancy : integer range 0 to %d := 0;\n\
       begin\n\
      \  top_value <= stack((top + %d) mod %d);\n\
      \  empty <= '1' when occupancy = 0 else '0';\n\n\
      \  stack_ops : process (clk)\n\
      \  begin\n\
      \    if rising_edge(clk) then\n\
      \      if push_en = '1' then\n\
      \        stack(top) <= push_address;\n\
      \        top <= (top + 1) mod %d;\n\
      \        if occupancy < %d then occupancy <= occupancy + 1; end if;\n\
      \      elsif pop_en = '1' and occupancy > 0 then\n\
      \        top <= (top + %d) mod %d;\n\
      \        occupancy <= occupancy - 1;\n\
      \      end if;\n\
      \    end if;\n\
      \  end process stack_ops;"
      depth (depth - 1) (pc_width - 1) (depth - 1) depth (depth - 1) depth
      depth depth (depth - 1) depth
  in
  Vhdl.header
    ~description:(Printf.sprintf "return address stack: %d entries" depth)
  ^ Vhdl.entity ~name:"ras"
      ~ports:
        Vhdl.
          [ { port_name = "clk"; direction = In; port_type = "std_logic" };
            { port_name = "push_en"; direction = In; port_type = "std_logic" };
            { port_name = "push_address"; direction = In;
              port_type = std_logic_vector pc_width };
            { port_name = "pop_en"; direction = In; port_type = "std_logic" };
            { port_name = "top_value"; direction = Out;
              port_type = std_logic_vector pc_width };
            { port_name = "empty"; direction = Out; port_type = "std_logic" }
          ]
      ()
  ^ Vhdl.architecture ~name:"rtl" ~of_entity:"ras" ~body

let predictor_unit (config : Resim_bpred.Predictor.config) =
  [ ("direction_predictor.vhd", direction_predictor config.direction);
    ("btb.vhd", btb config.btb);
    ("ras.vhd", ras ~depth:config.ras_depth) ]
