let params_package (config : Resim_core.Config.t) =
  let constant name value =
    Printf.sprintf "  constant %-24s : integer := %d;" name value
  in
  let lines =
    [ constant "WIDTH" config.width;
      constant "IFQ_ENTRIES" config.ifq_entries;
      constant "DECOUPLE_ENTRIES" config.decouple_entries;
      constant "ROB_ENTRIES" config.rob_entries;
      constant "LSQ_ENTRIES" config.lsq_entries;
      constant "ALU_COUNT" config.alu_count;
      constant "ALU_LATENCY" config.alu_latency;
      constant "MULT_COUNT" config.mult_count;
      constant "MULT_LATENCY" config.mult_latency;
      constant "DIV_COUNT" config.div_count;
      constant "DIV_LATENCY" config.div_latency;
      constant "MEM_READ_PORTS" config.mem_read_ports;
      constant "MEM_WRITE_PORTS" config.mem_write_ports;
      constant "MISFETCH_PENALTY" config.misfetch_penalty;
      constant "MISSPEC_PENALTY" config.misspeculation_penalty;
      constant "MINOR_CYCLES" (Resim_core.Config.minor_cycle_latency config);
      Printf.sprintf "  constant %-24s : string  := \"%s\";" "ORGANIZATION"
        (Resim_core.Config.organization_name config.organization) ]
  in
  Vhdl.header
    ~description:
      (Printf.sprintf "ReSim parameters: %d-wide, %s organization"
         config.width
         (Resim_core.Config.organization_name config.organization))
  ^ "package resim_params is\n"
  ^ String.concat "\n" lines
  ^ "\nend package resim_params;\n"

let generate_all (config : Resim_core.Config.t) =
  (("resim_params.vhd", params_package config)
  :: Predictor_gen.predictor_unit config.predictor)
  @ Structures_gen.structures config

let write_all ~dir config =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.map
    (fun (name, contents) ->
      let path = Filename.concat dir name in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc contents);
      path)
    (generate_all config)
