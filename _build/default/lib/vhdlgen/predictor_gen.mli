(** VHDL generation for the branch-predictor unit.

    §III of the paper: “We use a script to produce VHDL code for the
    desired Branch Predictor according to the user parameters that
    include: the RAS size, the number of entries and associativity of
    the BTB, etc.” — this module is that script. Table sizes are baked
    in as constants (VHDL array bounds are static), exactly as a
    per-configuration generated core would have them. *)

val direction_predictor : Resim_bpred.Direction.config -> string
(** Entity [direction_predictor]: combinational [prediction] for
    [predict_pc], synchronous training port. Static and perfect
    configurations generate the corresponding trivial architectures
    (the oracle's actual outcome arrives on a port). *)

val btb : Resim_bpred.Btb.config -> string
(** Entity [btb]: per-way tag/target memories with a round-robin
    replacement pointer per set. *)

val ras : depth:int -> string
(** Entity [ras]: circular return-address stack. *)

val predictor_unit : Resim_bpred.Predictor.config -> (string * string) list
(** All three files, as (filename, contents). *)
