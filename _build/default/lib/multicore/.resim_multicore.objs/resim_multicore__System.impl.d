lib/multicore/system.ml: Format Int64 List Option Resim_cache Resim_core Resim_fpga Resim_trace
