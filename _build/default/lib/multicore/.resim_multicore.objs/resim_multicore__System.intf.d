lib/multicore/system.mli: Format Resim_core Resim_fpga Resim_trace
