(** Machine-readable table exports.

    Writes the regenerated tables as CSV files (one per table, with
    paper reference columns included), so downstream analysis does not
    need to scrape the bench's text output. *)

val write_table1 : string -> unit
val write_table2 : string -> unit
val write_table3 : string -> unit
val write_table4 : string -> unit

val write_all : dir:string -> string list
(** Writes [resim_table<n>.csv] into [dir]; returns the paths written. *)
