type table1_row = {
  benchmark : string;
  left_v4 : float;
  left_v5 : float;
  right_v4 : float;
  right_v5 : float;
  fast_muops : float;
}

let table1 =
  [ { benchmark = "gzip"; left_v4 = 23.26; left_v5 = 29.07;
      right_v4 = 20.44; right_v5 = 25.55; fast_muops = 2.95 };
    { benchmark = "bzip2"; left_v4 = 27.55; left_v5 = 34.44;
      right_v4 = 18.53; right_v5 = 23.16; fast_muops = 3.51 };
    { benchmark = "parser"; left_v4 = 19.94; left_v5 = 24.92;
      right_v4 = 16.70; right_v5 = 20.88; fast_muops = 2.82 };
    { benchmark = "vortex"; left_v4 = 23.57; left_v5 = 29.46;
      right_v4 = 16.83; right_v5 = 21.04; fast_muops = 2.19 };
    { benchmark = "vpr"; left_v4 = 20.38; left_v5 = 25.48;
      right_v4 = 19.16; right_v5 = 23.95; fast_muops = 2.48 } ]

let table1_average =
  { benchmark = "Average"; left_v4 = 22.94; left_v5 = 28.67;
    right_v4 = 18.33; right_v5 = 22.92; fast_muops = 2.79 }

type table2_row = { simulator : string; isa : string; speed_mips : float }

let table2 =
  [ { simulator = "PTLSim"; isa = "x86-64"; speed_mips = 0.27 };
    { simulator = "sim-outorder"; isa = "PISA"; speed_mips = 0.30 };
    { simulator = "GEMS"; isa = "Sparc"; speed_mips = 0.07 };
    { simulator = "FAST"; isa = "x86, gshare BP"; speed_mips = 1.2 };
    { simulator = "FAST"; isa = "x86, perfect BP"; speed_mips = 2.79 };
    { simulator = "A-Ports"; isa = "MIPS subset, 4-wide"; speed_mips = 4.70 };
    { simulator = "ReSim"; isa = "PISA, 2-wide, perfect BP, Virtex5";
      speed_mips = 22.92 };
    { simulator = "ReSim"; isa = "PISA, 4-wide, 2-lev BP, Virtex5";
      speed_mips = 28.67 } ]

type table3_row = {
  benchmark3 : string;
  bits_per_instr : float;
  throughput_mips : float;
  trace_mbytes_s : float;
}

let table3 =
  [ { benchmark3 = "gzip"; bits_per_instr = 41.74; throughput_mips = 26.37;
      trace_mbytes_s = 137.56 };
    { benchmark3 = "bzip2"; bits_per_instr = 41.16; throughput_mips = 29.43;
      trace_mbytes_s = 151.39 };
    { benchmark3 = "parser"; bits_per_instr = 43.66; throughput_mips = 22.83;
      trace_mbytes_s = 124.58 };
    { benchmark3 = "vortex"; bits_per_instr = 47.14; throughput_mips = 24.47;
      trace_mbytes_s = 144.20 };
    { benchmark3 = "vpr"; bits_per_instr = 43.52; throughput_mips = 24.44;
      trace_mbytes_s = 132.94 } ]

let table3_average =
  { benchmark3 = "Average"; bits_per_instr = 43.44; throughput_mips = 25.51;
    trace_mbytes_s = 138.13 }

type table4_row = {
  structure : string;
  slice_pct : float;
  lut_pct : float;
  bram_pct : float;
}

let table4 =
  [ { structure = "fetch"; slice_pct = 25.0; lut_pct = 23.0; bram_pct = 0.0 };
    { structure = "disp"; slice_pct = 9.0; lut_pct = 5.0; bram_pct = 0.0 };
    { structure = "issue"; slice_pct = 5.0; lut_pct = 7.0; bram_pct = 0.0 };
    { structure = "lsq"; slice_pct = 14.0; lut_pct = 19.0; bram_pct = 0.0 };
    { structure = "wb"; slice_pct = 3.0; lut_pct = 4.0; bram_pct = 0.0 };
    { structure = "cmt"; slice_pct = 2.0; lut_pct = 2.0; bram_pct = 0.0 };
    { structure = "RT"; slice_pct = 3.0; lut_pct = 4.0; bram_pct = 0.0 };
    { structure = "RB"; slice_pct = 13.0; lut_pct = 14.0; bram_pct = 0.0 };
    { structure = "LSQ"; slice_pct = 6.0; lut_pct = 4.0; bram_pct = 0.0 };
    { structure = "BP"; slice_pct = 2.0; lut_pct = 2.0; bram_pct = 71.0 };
    { structure = "D-C"; slice_pct = 17.0; lut_pct = 15.0; bram_pct = 0.0 };
    { structure = "I-C"; slice_pct = 1.0; lut_pct = 1.0; bram_pct = 29.0 } ]

let table4_totals = (12273, 17175, 7)

let fast_area = (29230, 172)
