let report () = Resim_fpga.Area.estimate Resim_fpga.Area.reference_params

let print ppf =
  let area = report () in
  Format.fprintf ppf
    "@[<v>Table 4: area cost on Virtex-4 xc4vlx40 (model vs paper)@,@,\
     %-7s | %8s %8s %6s | %12s %8s@,"
    "struct" "slices" "LUTs" "BRAMs" "slice%(ours)" "(paper)";
  List.iter
    (fun (structure, (cost : Resim_fpga.Area.cost)) ->
      let name = Resim_fpga.Area.structure_name structure in
      let paper =
        List.find
          (fun (p : Paper_data.table4_row) -> p.structure = name)
          Paper_data.table4
      in
      Format.fprintf ppf "%-7s | %8d %8d %6d | %11.1f%% %7.1f%%@," name
        cost.slices cost.luts cost.brams
        (Resim_fpga.Area.percentage area structure)
        paper.slice_pct)
    area.per_structure;
  let slices, luts, brams = Paper_data.table4_totals in
  Format.fprintf ppf
    "@,totals excluding caches: ours %d slices / %d LUTs / %d BRAMs; \
     paper %d / %d / %d@,"
    area.total.slices area.total.luts area.total.brams slices luts brams;
  let fast_slices, fast_brams = Paper_data.fast_area in
  Format.fprintf ppf
    "FAST 4-wide on Virtex-4: %d slices (%.1fx ours), %d BRAMs (%.0fx \
     ours incl caches); paper reports 2.4x and 24x@,"
    fast_slices
    (float_of_int fast_slices /. float_of_int area.total.slices)
    fast_brams
    (float_of_int fast_brams
    /. float_of_int (max 1 area.total_with_caches.brams));
  let device = Resim_fpga.Device.virtex4_xc4vlx40 in
  Format.fprintf ppf "fits %s: %b (%.0f%% of slices)@]" device.name
    (Resim_fpga.Area.fits area device)
    (100.0 *. Resim_fpga.Area.utilisation area device)
