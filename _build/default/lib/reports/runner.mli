(** Shared experiment runner with memoisation.

    Tables 1 and 3 and several ablations reuse the same
    (kernel, configuration) simulations; traces and outcomes are cached
    per [key] so each experiment runs once per bench invocation. *)

type run = {
  kernel : string;
  config : Resim_core.Config.t;
  generated : Resim_tracegen.Generator.result;
  outcome : Resim_core.Resim.outcome;
}

(** Which input size to run a kernel at. *)
type scale_spec =
  | Evaluation      (** the kernel's [evaluation_scale] — table runs *)
  | Default         (** the kernel's default scale — quick ablations *)
  | Exact of int

val run_kernel :
  key:string ->
  config:Resim_core.Config.t ->
  ?scale:scale_spec ->
  Resim_workloads.Workload.t ->
  run
(** [key] identifies the configuration for memoisation (e.g. ["left"]);
    it must change whenever [config] does. [scale] defaults to
    [Evaluation]. *)

val clear_cache : unit -> unit

val mips : run -> device:Resim_fpga.Device.t -> float
val mips_wrong_path : run -> device:Resim_fpga.Device.t -> float
