(** Table 4 — area cost on the Virtex-4 (xc4vlx40).

    Our parametric area model evaluated at the reference 4-wide
    configuration, per structure and in total, next to the published
    percentages and totals, plus the FAST area comparison (2.4x slices,
    24x BRAMs) and the device-fit check. *)

val report : unit -> Resim_fpga.Area.report
val print : Format.formatter -> unit
