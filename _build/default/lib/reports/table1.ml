type row = {
  benchmark : string;
  left_v4 : float;
  left_v5 : float;
  right_v4 : float;
  right_v5 : float;
}

let v4 = Resim_fpga.Device.virtex4_xc4vlx40
let v5 = Resim_fpga.Device.virtex5_xc5vlx50t

let measure workload =
  let left =
    Runner.run_kernel ~key:"table1-left" ~config:Resim_core.Config.reference
      workload
  in
  let right =
    Runner.run_kernel ~key:"table1-right"
      ~config:Resim_core.Config.fast_comparable workload
  in
  { benchmark = Runner.(left.kernel);
    left_v4 = Runner.mips left ~device:v4;
    left_v5 = Runner.mips left ~device:v5;
    right_v4 = Runner.mips right ~device:v4;
    right_v5 = Runner.mips right ~device:v5 }

let average rows =
  let n = float_of_int (List.length rows) in
  let sum f = List.fold_left (fun acc row -> acc +. f row) 0.0 rows /. n in
  { benchmark = "Average";
    left_v4 = sum (fun r -> r.left_v4);
    left_v5 = sum (fun r -> r.left_v5);
    right_v4 = sum (fun r -> r.right_v4);
    right_v5 = sum (fun r -> r.right_v5) }

let rows () =
  let measured = List.map measure Resim_workloads.Workload.all in
  measured @ [ average measured ]

let print ppf =
  let measured = rows () in
  Format.fprintf ppf
    "@[<v>Table 1: ReSim simulation performance (MIPS), measured vs paper@,\
     Left: 4-issue, 2-level BP, perfect memory (L = 7).  \
     Right: 2-issue, perfect BP, 32KB L1s (L = 6).@,@,";
  Format.fprintf ppf
    "%-8s | %21s | %21s | %21s | %21s | %s@,"
    "SPEC" "left V4 (ours/paper)" "left V5 (ours/paper)"
    "right V4 (ours/paper)" "right V5 (ours/paper)" "FAST Muops (paper)";
  List.iter
    (fun row ->
      let paper =
        if row.benchmark = "Average" then Paper_data.table1_average
        else
          List.find
            (fun (p : Paper_data.table1_row) -> p.benchmark = row.benchmark)
            Paper_data.table1
      in
      Format.fprintf ppf
        "%-8s | %10.2f / %8.2f | %10.2f / %8.2f | %10.2f / %8.2f | \
         %10.2f / %8.2f | %8.2f@,"
        row.benchmark row.left_v4 paper.left_v4 row.left_v5 paper.left_v5
        row.right_v4 paper.right_v4 row.right_v5 paper.right_v5
        paper.fast_muops)
    measured;
  Format.fprintf ppf "@]"
