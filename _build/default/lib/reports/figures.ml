let figure ppf ~number ~caption organization =
  let schedule = Resim_core.Minor_cycle.build organization ~width:4 in
  Format.fprintf ppf "@[<v>Figure %d: %s@,@,%s@]" number caption
    (Resim_core.Minor_cycle.render schedule)

let print_figure2 ppf =
  figure ppf ~number:2
    ~caption:
      "simple serial pipeline — Writeback and Lsq_refresh precede Issue; \
       each Issue is split into Issue + Cache Access (2N+3 minor cycles)"
    Resim_core.Config.Simple

let print_figure3 ppf =
  figure ppf ~number:3
    ~caption:
      "improved pipeline — Issue overlaps Writeback via early broadcast; \
       cache access precedes writeback (N+4 minor cycles)"
    Resim_core.Config.Improved

let print_figure4 ppf =
  figure ppf ~number:4
    ~caption:
      "optimized pipeline — Lsq_refresh in parallel with the first Issue \
       slot, which excludes loads (N+3 minor cycles, memory ports <= N-1)"
    Resim_core.Config.Optimized

let print_latency_table ppf =
  Format.fprintf ppf
    "@[<v>Major-cycle latency in minor cycles (formulas 2N+3 / N+4 / \
     N+3):@,@,%6s %8s %10s %10s@," "width" "simple" "improved" "optimized";
  List.iter
    (fun width ->
      let latency organization =
        Resim_core.Config.minor_cycles_per_major organization ~width
      in
      Format.fprintf ppf "%6d %8d %10d %10d@," width
        (latency Resim_core.Config.Simple)
        (latency Resim_core.Config.Improved)
        (latency Resim_core.Config.Optimized))
    [ 1; 2; 3; 4; 6; 8 ];
  Format.fprintf ppf "@]"

let print_all ppf =
  print_figure2 ppf;
  Format.fprintf ppf "@.@.";
  print_figure3 ppf;
  Format.fprintf ppf "@.@.";
  print_figure4 ppf;
  Format.fprintf ppf "@.@.";
  print_latency_table ppf
