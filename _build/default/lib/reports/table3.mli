(** Table 3 — ReSim throughput statistics and trace-bandwidth demand.

    Perfect memory system, Virtex-4, per benchmark: average trace bits
    per instruction, simulation throughput *including* mis-speculated
    instructions, and the implied input-trace bandwidth in MB/s. Also
    reports the misprediction instruction overhead the paper puts at
    about 10 %. *)

type row = {
  benchmark : string;
  bits_per_instr : float;
  throughput_mips : float;
  trace_mbytes_s : float;
  wrong_path_overhead : float;  (** fetched wrong-path / fetched *)
}

val rows : unit -> row list
(** Five kernels plus the average (last). *)

val print : Format.formatter -> unit
