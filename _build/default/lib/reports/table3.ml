type row = {
  benchmark : string;
  bits_per_instr : float;
  throughput_mips : float;
  trace_mbytes_s : float;
  wrong_path_overhead : float;
}

let v4 = Resim_fpga.Device.virtex4_xc4vlx40

let measure workload =
  (* Same configuration as Table 1 left, so the memoised run is shared. *)
  let run =
    Runner.run_kernel ~key:"table1-left" ~config:Resim_core.Config.reference
      workload
  in
  let stats = run.Runner.outcome.stats in
  let fetched = Resim_core.Stats.(get fetched) stats in
  let wrong = Resim_core.Stats.(get fetched_wrong_path) stats in
  let mips = Runner.mips_wrong_path run ~device:v4 in
  { benchmark = run.Runner.kernel;
    bits_per_instr = run.Runner.outcome.bits_per_instruction;
    throughput_mips = mips;
    trace_mbytes_s =
      Resim_fpga.Throughput.trace_mbytes_per_second ~mips
        ~bits_per_instruction:run.Runner.outcome.bits_per_instruction;
    wrong_path_overhead =
      (if Int64.equal fetched 0L then 0.0
       else Int64.to_float wrong /. Int64.to_float fetched) }

let average rows =
  let n = float_of_int (List.length rows) in
  let sum f = List.fold_left (fun acc row -> acc +. f row) 0.0 rows /. n in
  { benchmark = "Average";
    bits_per_instr = sum (fun r -> r.bits_per_instr);
    throughput_mips = sum (fun r -> r.throughput_mips);
    trace_mbytes_s = sum (fun r -> r.trace_mbytes_s);
    wrong_path_overhead = sum (fun r -> r.wrong_path_overhead) }

let rows () =
  let measured = List.map measure Resim_workloads.Workload.all in
  measured @ [ average measured ]

let print ppf =
  Format.fprintf ppf
    "@[<v>Table 3: ReSim throughput statistics (perfect memory, \
     Virtex-4)@,@,%-8s | %19s | %21s | %21s | %s@,"
    "SPEC" "bits/instr (o/p)" "sim MIPS incl WP (o/p)"
    "trace MB/s (o/p)" "WP overhead";
  List.iter
    (fun row ->
      let paper =
        if row.benchmark = "Average" then Paper_data.table3_average
        else
          List.find
            (fun (p : Paper_data.table3_row) -> p.benchmark3 = row.benchmark)
            Paper_data.table3
      in
      Format.fprintf ppf
        "%-8s | %8.2f / %8.2f | %10.2f / %8.2f | %10.2f / %8.2f | %8.1f%%@,"
        row.benchmark row.bits_per_instr paper.bits_per_instr
        row.throughput_mips paper.throughput_mips row.trace_mbytes_s
        paper.trace_mbytes_s
        (100.0 *. row.wrong_path_overhead))
    (rows ());
  Format.fprintf ppf
    "@,(paper: misprediction cost about 10%% of trace instructions; \
     1.1 Gb/s average demand)@]"
