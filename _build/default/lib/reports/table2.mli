(** Table 2 — architectural simulator performance survey.

    Published rows (PTLsim through A-Ports) are constants from the paper;
    the two ReSim rows are replaced by our measured Virtex-5 averages
    from Table 1, so the headline ≥5x claim over FAST and A-Ports is
    re-derived from our own simulation rather than restated. *)

type row = {
  simulator : string;
  isa : string;
  speed_mips : float;
  measured : bool;  (** true for rows this reproduction computed *)
}

val rows : unit -> row list
val speedup_vs_fast : unit -> float
val speedup_vs_aports : unit -> float
val print : Format.formatter -> unit
