(** Table 1 — ReSim simulation performance.

    Left portion: 4-issue processor, 2-level branch predictor, perfect
    memory, Optimized organization (L = N+3 = 7 minor cycles), on
    Virtex-4 and Virtex-5. Right portion: 2-issue processor, perfect
    branch predictor, 32 KB 8-way 64 B L1 I- and D-caches, Improved
    organization (L = N+4 = 6), with FAST's published Muops/s for
    reference. *)

type row = {
  benchmark : string;
  left_v4 : float;
  left_v5 : float;
  right_v4 : float;
  right_v5 : float;
}

val rows : unit -> row list
(** Measured rows for the five kernels plus the average (last). *)

val print : Format.formatter -> unit
