let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)

let row oc cells = output_string oc (String.concat "," cells ^ "\n")

let write_table1 path =
  with_out path (fun oc ->
      row oc
        [ "benchmark"; "left_v4"; "left_v4_paper"; "left_v5"; "left_v5_paper";
          "right_v4"; "right_v4_paper"; "right_v5"; "right_v5_paper" ];
      List.iter
        (fun (r : Table1.row) ->
          let paper =
            if r.benchmark = "Average" then Paper_data.table1_average
            else
              List.find
                (fun (p : Paper_data.table1_row) -> p.benchmark = r.benchmark)
                Paper_data.table1
          in
          row oc
            [ r.benchmark;
              Printf.sprintf "%.2f" r.left_v4;
              Printf.sprintf "%.2f" paper.left_v4;
              Printf.sprintf "%.2f" r.left_v5;
              Printf.sprintf "%.2f" paper.left_v5;
              Printf.sprintf "%.2f" r.right_v4;
              Printf.sprintf "%.2f" paper.right_v4;
              Printf.sprintf "%.2f" r.right_v5;
              Printf.sprintf "%.2f" paper.right_v5 ])
        (Table1.rows ()))

let write_table2 path =
  with_out path (fun oc ->
      row oc [ "simulator"; "isa"; "speed_mips"; "measured" ];
      List.iter
        (fun (r : Table2.row) ->
          row oc
            [ r.simulator; r.isa;
              Printf.sprintf "%.2f" r.speed_mips;
              string_of_bool r.measured ])
        (Table2.rows ()))

let write_table3 path =
  with_out path (fun oc ->
      row oc
        [ "benchmark"; "bits_per_instr"; "bits_per_instr_paper";
          "throughput_mips"; "throughput_mips_paper"; "trace_mbytes_s";
          "trace_mbytes_s_paper"; "wrong_path_overhead" ];
      List.iter
        (fun (r : Table3.row) ->
          let paper =
            if r.benchmark = "Average" then Paper_data.table3_average
            else
              List.find
                (fun (p : Paper_data.table3_row) ->
                  p.benchmark3 = r.benchmark)
                Paper_data.table3
          in
          row oc
            [ r.benchmark;
              Printf.sprintf "%.2f" r.bits_per_instr;
              Printf.sprintf "%.2f" paper.bits_per_instr;
              Printf.sprintf "%.2f" r.throughput_mips;
              Printf.sprintf "%.2f" paper.throughput_mips;
              Printf.sprintf "%.2f" r.trace_mbytes_s;
              Printf.sprintf "%.2f" paper.trace_mbytes_s;
              Printf.sprintf "%.4f" r.wrong_path_overhead ])
        (Table3.rows ()))

let write_table4 path =
  let report = Table4.report () in
  with_out path (fun oc ->
      row oc
        [ "structure"; "slices"; "luts"; "brams"; "slice_pct";
          "slice_pct_paper" ];
      List.iter
        (fun (structure, (cost : Resim_fpga.Area.cost)) ->
          let name = Resim_fpga.Area.structure_name structure in
          let paper =
            List.find
              (fun (p : Paper_data.table4_row) -> p.structure = name)
              Paper_data.table4
          in
          row oc
            [ name;
              string_of_int cost.slices;
              string_of_int cost.luts;
              string_of_int cost.brams;
              Printf.sprintf "%.1f"
                (Resim_fpga.Area.percentage report structure);
              Printf.sprintf "%.1f" paper.slice_pct ])
        report.per_structure)

let write_all ~dir =
  let targets =
    [ ("resim_table1.csv", write_table1);
      ("resim_table2.csv", write_table2);
      ("resim_table3.csv", write_table3);
      ("resim_table4.csv", write_table4) ]
  in
  List.map
    (fun (name, write) ->
      let path = Filename.concat dir name in
      write path;
      path)
    targets
