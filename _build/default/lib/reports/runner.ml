type run = {
  kernel : string;
  config : Resim_core.Config.t;
  generated : Resim_tracegen.Generator.result;
  outcome : Resim_core.Resim.outcome;
}

type scale_spec = Evaluation | Default | Exact of int

let cache : (string * string * int, run) Hashtbl.t = Hashtbl.create 32

let run_kernel ~key ~config ?(scale = Evaluation) workload =
  let module K = (val workload : Resim_workloads.Kernel_sig.S) in
  let scale_tag =
    match scale with
    | Evaluation -> K.evaluation_scale
    | Default -> -1
    | Exact scale -> scale
  in
  let cache_key = (key, K.name, scale_tag) in
  match Hashtbl.find_opt cache cache_key with
  | Some run -> run
  | None ->
      let program =
        match scale with
        | Evaluation -> K.program ~scale:K.evaluation_scale ()
        | Default -> K.program ()
        | Exact scale -> K.program ~scale ()
      in
      let generator =
        { Resim_tracegen.Generator.predictor =
            config.Resim_core.Config.predictor;
          wrong_path_limit = config.rob_entries + config.ifq_entries;
          max_instructions = 20_000_000 }
      in
      let generated = Resim_tracegen.Generator.run ~config:generator program in
      let outcome = Resim_core.Resim.simulate_trace ~config generated.records in
      let run = { kernel = K.name; config; generated; outcome } in
      Hashtbl.replace cache cache_key run;
      run

let clear_cache () = Hashtbl.reset cache

let mips run ~device = Resim_core.Resim.mips run.outcome ~device

let mips_wrong_path run ~device =
  Resim_core.Resim.mips_with_wrong_path run.outcome ~device
