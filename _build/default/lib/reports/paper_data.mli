(** Published numbers from the paper, kept verbatim for side-by-side
    comparison in every regenerated table (Fytraki & Pnevmatikatos,
    DATE 2009). *)

type table1_row = {
  benchmark : string;
  left_v4 : float;   (** 4-issue, 2-level BP, perfect memory, MIPS *)
  left_v5 : float;
  right_v4 : float;  (** 2-issue, perfect BP, 32 KB L1s, MIPS *)
  right_v5 : float;
  fast_muops : float (** FAST, 2-issue, perfect BP, simulated Muops/s *)
}

val table1 : table1_row list
(** gzip, bzip2, parser, vortex, vpr — plus use {!table1_average}. *)

val table1_average : table1_row

(** Table 2: simulator speed survey. *)
type table2_row = { simulator : string; isa : string; speed_mips : float }

val table2 : table2_row list
(** Published rows only (PTLsim, sim-outorder, GEMS, FAST x2, A-Ports,
    ReSim x2); the bench appends our measured rows. *)

type table3_row = {
  benchmark3 : string;
  bits_per_instr : float;
  throughput_mips : float;   (** includes mis-speculated instructions *)
  trace_mbytes_s : float;
}

val table3 : table3_row list
val table3_average : table3_row

(** Table 4: area breakdown (% of total design slices/LUTs/BRAMs). *)
type table4_row = {
  structure : string;
  slice_pct : float;
  lut_pct : float;
  bram_pct : float;
}

val table4 : table4_row list
val table4_totals : int * int * int
(** (slices, 4-input LUTs, BRAMs) excluding the caches. *)

val fast_area : int * int
(** FAST on Virtex-4: (slices, BRAMs) — 2.4x and 24x ReSim. *)
