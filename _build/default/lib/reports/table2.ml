type row = {
  simulator : string;
  isa : string;
  speed_mips : float;
  measured : bool;
}

let published =
  List.filter
    (fun (r : Paper_data.table2_row) -> r.simulator <> "ReSim")
    Paper_data.table2

let measured_resim () =
  let table1 = Table1.rows () in
  let avg = List.nth table1 (List.length table1 - 1) in
  [ { simulator = "ReSim"; isa = "PISA, 2-wide, perfect BP, Virtex5";
      speed_mips = avg.Table1.right_v5; measured = true };
    { simulator = "ReSim"; isa = "PISA, 4-wide, 2-lev BP, Virtex5";
      speed_mips = avg.Table1.left_v5; measured = true } ]

let rows () =
  List.map
    (fun (r : Paper_data.table2_row) ->
      { simulator = r.simulator; isa = r.isa; speed_mips = r.speed_mips;
        measured = false })
    published
  @ measured_resim ()

(* The paper's speedup arithmetic uses matched implementation
   technology: the Virtex-4 averages against FAST (2-issue, perfect BP,
   same L1s) and against A-Ports (4-wide out-of-order). *)
let table1_average () =
  let table1 = Table1.rows () in
  List.nth table1 (List.length table1 - 1)

let speedup_vs_fast () =
  Resim_fpga.Throughput.speedup ~ours:(table1_average ()).Table1.right_v4
    ~theirs:2.79

let speedup_vs_aports () =
  Resim_fpga.Throughput.speedup ~ours:(table1_average ()).Table1.left_v4
    ~theirs:4.70

let print ppf =
  Format.fprintf ppf
    "@[<v>Table 2: architectural simulator performance@,@,%-14s %-32s %10s@,"
    "Simulator" "ISA" "Speed MIPS";
  List.iter
    (fun row ->
      Format.fprintf ppf "%-14s %-32s %10.2f%s@," row.simulator row.isa
        row.speed_mips
        (if row.measured then "  (measured)" else "  (published)"))
    (rows ());
  Format.fprintf ppf
    "@,ReSim speedup vs FAST (perfect BP): %.2fx (paper: 6.57x on \
     matched config)@,ReSim speedup vs A-Ports: %.2fx (paper: ~5x)@]"
    (speedup_vs_fast ()) (speedup_vs_aports ())
