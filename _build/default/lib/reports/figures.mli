(** Figures 2–4 — ReSim's internal pipeline organizations.

    Renders the minor-cycle schedules (4-wide, as in the paper's figures)
    and the latency formulas [2N+3] / [N+4] / [N+3] across widths. *)

val print_figure2 : Format.formatter -> unit
val print_figure3 : Format.formatter -> unit
val print_figure4 : Format.formatter -> unit

val print_latency_table : Format.formatter -> unit
(** Latency in minor cycles for widths 1–8, all three organizations. *)

val print_all : Format.formatter -> unit
