lib/reports/table3.mli: Format
