lib/reports/ablations.mli: Format
