lib/reports/table1.mli: Format
