lib/reports/table4.mli: Format Resim_fpga
