lib/reports/figures.ml: Format List Resim_core
