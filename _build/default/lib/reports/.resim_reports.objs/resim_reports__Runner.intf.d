lib/reports/runner.mli: Resim_core Resim_fpga Resim_tracegen Resim_workloads
