lib/reports/runner.ml: Hashtbl Resim_core Resim_tracegen Resim_workloads
