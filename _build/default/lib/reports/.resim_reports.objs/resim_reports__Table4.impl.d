lib/reports/table4.ml: Format List Paper_data Resim_fpga
