lib/reports/paper_data.mli:
