lib/reports/paper_data.ml:
