lib/reports/table1.ml: Format List Paper_data Resim_core Resim_fpga Resim_workloads Runner
