lib/reports/figures.mli: Format
