lib/reports/table2.mli: Format
