lib/reports/ablations.ml: Format Int64 List Resim_baseline Resim_bpred Resim_cache Resim_core Resim_fpga Resim_trace Resim_tracegen Resim_workloads Runner
