lib/reports/csv_export.mli:
