lib/reports/csv_export.ml: Filename Fun List Paper_data Printf Resim_fpga String Table1 Table2 Table3 Table4
