lib/reports/table2.ml: Format List Paper_data Resim_fpga Table1
