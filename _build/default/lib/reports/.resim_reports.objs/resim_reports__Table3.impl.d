lib/reports/table3.ml: Format Int64 List Paper_data Resim_core Resim_fpga Resim_workloads Runner
