type implementation = Serial | Parallel of { width : int }

let log2 x = log x /. log 2.0

let minor_cycle_mhz device implementation =
  let base = device.Device.minor_cycle_mhz in
  match implementation with
  | Serial -> base
  | Parallel { width } ->
      if width <= 1 then base
      else base *. (1.0 -. (0.22 *. log2 (float_of_int width) /. log2 4.0))

let area_multiplier = function
  | Serial -> 1.0
  | Parallel { width } -> float_of_int (max 1 width)
