let simulated_cycles_per_second ~mhz ~minor_cycles_per_major =
  mhz *. 1e6 /. float_of_int minor_cycles_per_major

let mips ~mhz ~minor_cycles_per_major ~instructions ~major_cycles =
  if Int64.equal major_cycles 0L then 0.0
  else
    let ipc = Int64.to_float instructions /. Int64.to_float major_cycles in
    simulated_cycles_per_second ~mhz ~minor_cycles_per_major *. ipc /. 1e6

let trace_mbytes_per_second ~mips ~bits_per_instruction =
  mips *. bits_per_instruction /. 8.0

let speedup ~ours ~theirs = if theirs = 0.0 then infinity else ours /. theirs
