(** Simulation-throughput model.

    ReSim simulates one major cycle every [L] minor cycles, so with a
    minor-cycle frequency [f] it simulates [f / L] processor cycles per
    second, and the simulation speed in MIPS is that rate times the
    simulated processor's instructions per cycle. Table 1 counts
    committed (correct-path) instructions; Table 3 additionally counts
    fetched wrong-path instructions and derives the input trace bandwidth
    demand in MB/s. *)

val simulated_cycles_per_second :
  mhz:float -> minor_cycles_per_major:int -> float

val mips :
  mhz:float ->
  minor_cycles_per_major:int ->
  instructions:int64 ->
  major_cycles:int64 ->
  float
(** Simulation speed in million instructions per second for a run that
    simulated [instructions] over [major_cycles]. *)

val trace_mbytes_per_second : mips:float -> bits_per_instruction:float -> float
(** Input-trace bandwidth demand: [mips * bits/instr / 8] MB/s. *)

val speedup : ours:float -> theirs:float -> float
