(** Target FPGA devices.

    The paper implements ReSim on a Virtex-4 [xc4vlx40] and a Virtex-5
    [xc5vlx50t] with Xilinx ISE 9.1i, achieving minor-cycle frequencies of
    84 MHz and 105 MHz respectively. Capacities below are the public
    datasheet figures; they feed the design-fit check. *)

type family = Virtex4 | Virtex5

type t = {
  name : string;
  family : family;
  slices : int;           (** total slices *)
  luts : int;             (** total LUTs (4-input on V4, 6-input on V5) *)
  brams : int;            (** block RAMs *)
  minor_cycle_mhz : float (** achieved ReSim minor-cycle frequency *)
}

val virtex4_xc4vlx40 : t
val virtex5_xc5vlx50t : t

val virtex5_xc5vlx330t : t
(** A large Virtex-5 part (not in the paper) used by the multi-core
    example to explore the paper's “multiple ReSim instances per FPGA”
    future-work direction. *)

val all : t list
val pp : Format.formatter -> t -> unit
