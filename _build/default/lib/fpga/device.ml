type family = Virtex4 | Virtex5

type t = {
  name : string;
  family : family;
  slices : int;
  luts : int;
  brams : int;
  minor_cycle_mhz : float;
}

let virtex4_xc4vlx40 =
  { name = "xc4vlx40"; family = Virtex4; slices = 18_432; luts = 36_864;
    brams = 96; minor_cycle_mhz = 84.0 }

let virtex5_xc5vlx50t =
  { name = "xc5vlx50t"; family = Virtex5; slices = 7_200; luts = 28_800;
    brams = 60; minor_cycle_mhz = 105.0 }

let virtex5_xc5vlx330t =
  { name = "xc5vlx330t"; family = Virtex5; slices = 51_840; luts = 207_360;
    brams = 324; minor_cycle_mhz = 105.0 }

let all = [ virtex4_xc4vlx40; virtex5_xc5vlx50t; virtex5_xc5vlx330t ]

let pp ppf d =
  Format.fprintf ppf "%s (%s, %d slices, %d LUTs, %d BRAMs, %.0f MHz)"
    d.name
    (match d.family with Virtex4 -> "Virtex-4" | Virtex5 -> "Virtex-5")
    d.slices d.luts d.brams d.minor_cycle_mhz
