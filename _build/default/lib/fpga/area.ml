type params = {
  width : int;
  ifq_entries : int;
  decouple_entries : int;
  rob_entries : int;
  lsq_entries : int;
  arch_regs : int;
  bht_entries : int;
  history_bits : int;
  pht_entries : int;
  btb_entries : int;
  ras_depth : int;
  with_icache : bool;
  with_dcache : bool;
}

let reference_params =
  { width = 4; ifq_entries = 4; decouple_entries = 4; rob_entries = 16;
    lsq_entries = 8; arch_regs = 32; bht_entries = 4; history_bits = 8;
    pht_entries = 4096; btb_entries = 512; ras_depth = 16;
    with_icache = true; with_dcache = true }

type structure =
  | Fetch_stage
  | Dispatch_stage
  | Issue_stage
  | Lsq_stage
  | Writeback_stage
  | Commit_stage
  | Rename_table
  | Reorder_buffer
  | Lsq_structure
  | Branch_predictor
  | Dcache
  | Icache

let structure_name = function
  | Fetch_stage -> "fetch"
  | Dispatch_stage -> "disp"
  | Issue_stage -> "issue"
  | Lsq_stage -> "lsq"
  | Writeback_stage -> "wb"
  | Commit_stage -> "cmt"
  | Rename_table -> "RT"
  | Reorder_buffer -> "RB"
  | Lsq_structure -> "LSQ"
  | Branch_predictor -> "BP"
  | Dcache -> "D-C"
  | Icache -> "I-C"

let structures =
  [ Fetch_stage; Dispatch_stage; Issue_stage; Lsq_stage; Writeback_stage;
    Commit_stage; Rename_table; Reorder_buffer; Lsq_structure;
    Branch_predictor; Dcache; Icache ]

type cost = { slices : int; luts : int; brams : int }

type report = {
  params : params;
  per_structure : (structure * cost) list;
  total : cost;
  total_with_caches : cost;
}

(* Reference costs, back-solved from Table 4: the published percentages
   are of the whole design (caches included) while the published totals
   (12 273 slices, 17 175 LUTs) exclude the caches. *)
let reference_cost = function
  | Fetch_stage -> { slices = 3742; luts = 4703; brams = 0 }
  | Dispatch_stage -> { slices = 1347; luts = 1022; brams = 0 }
  | Issue_stage -> { slices = 748; luts = 1431; brams = 0 }
  | Lsq_stage -> { slices = 2095; luts = 3885; brams = 0 }
  | Writeback_stage -> { slices = 449; luts = 818; brams = 0 }
  | Commit_stage -> { slices = 299; luts = 409; brams = 0 }
  | Rename_table -> { slices = 449; luts = 818; brams = 0 }
  | Reorder_buffer -> { slices = 1946; luts = 2862; brams = 0 }
  | Lsq_structure -> { slices = 898; luts = 818; brams = 0 }
  | Branch_predictor -> { slices = 299; luts = 409; brams = 5 }
  | Dcache -> { slices = 2544; luts = 3067; brams = 0 }
  | Icache -> { slices = 150; luts = 204; brams = 2 }

let ratio a b = float_of_int a /. float_of_int b

let log2f n = log (float_of_int (max 1 n)) /. log 2.0

(* Weighted blend of scaling ratios; weights must sum to 1. *)
let blend terms =
  List.fold_left (fun acc (weight, r) -> acc +. (weight *. r)) 0.0 terms

(* Predictor storage bits: PHT 2-bit counters, BTB tag+target entries
   (~44 bits), BHT history registers, RAS entries (~30 bits). *)
let predictor_storage_bits p =
  (2 * p.pht_entries) + (44 * p.btb_entries)
  + (p.bht_entries * p.history_bits) + (30 * p.ras_depth)

(* Scaling law of each structure relative to the reference parameters.
   Serial execution keeps datapaths one instruction wide, so issue width
   mostly contributes control logic, while storage structures scale with
   their entry counts. *)
let scale p structure =
  let ref_ = reference_params in
  match structure with
  | Fetch_stage ->
      blend [ (0.7, ratio p.ifq_entries ref_.ifq_entries);
              (0.3, ratio p.width ref_.width) ]
  | Dispatch_stage ->
      blend [ (0.7, ratio p.decouple_entries ref_.decouple_entries);
              (0.3, ratio p.width ref_.width) ]
  | Issue_stage ->
      blend [ (0.5, ratio p.rob_entries ref_.rob_entries);
              (0.5, ratio p.width ref_.width) ]
  | Lsq_stage | Lsq_structure -> ratio p.lsq_entries ref_.lsq_entries
  | Writeback_stage | Commit_stage -> ratio p.width ref_.width
  | Rename_table ->
      blend [ (0.5, ratio p.arch_regs ref_.arch_regs);
              (0.5, log2f p.rob_entries /. log2f ref_.rob_entries) ]
  | Reorder_buffer -> ratio p.rob_entries ref_.rob_entries
  | Branch_predictor ->
      ratio (predictor_storage_bits p) (predictor_storage_bits ref_)
  | Dcache -> if p.with_dcache then 1.0 else 0.0
  | Icache -> if p.with_icache then 1.0 else 0.0

let scaled_cost p structure =
  let ref_cost = reference_cost structure in
  let s = scale p structure in
  let apply v = int_of_float (Float.round (float_of_int v *. s)) in
  let brams =
    match structure with
    | Branch_predictor ->
        (* BRAM count is quantised: storage ratio applied to the 5
           reference blocks, at least one when any storage exists. *)
        max 1 (int_of_float (ceil (float_of_int ref_cost.brams *. s)))
    | Icache -> if p.with_icache then ref_cost.brams else 0
    | Fetch_stage | Dispatch_stage | Issue_stage | Lsq_stage
    | Writeback_stage | Commit_stage | Rename_table | Reorder_buffer
    | Lsq_structure | Dcache -> 0
  in
  { slices = apply ref_cost.slices; luts = apply ref_cost.luts; brams }

let add_cost a b =
  { slices = a.slices + b.slices; luts = a.luts + b.luts;
    brams = a.brams + b.brams }

let zero_cost = { slices = 0; luts = 0; brams = 0 }

let is_cache = function
  | Dcache | Icache -> true
  | Fetch_stage | Dispatch_stage | Issue_stage | Lsq_stage
  | Writeback_stage | Commit_stage | Rename_table | Reorder_buffer
  | Lsq_structure | Branch_predictor -> false

let estimate params =
  let per_structure =
    List.map (fun s -> (s, scaled_cost params s)) structures
  in
  let total =
    List.fold_left
      (fun acc (s, c) -> if is_cache s then acc else add_cost acc c)
      zero_cost per_structure
  in
  let total_with_caches =
    List.fold_left (fun acc (_, c) -> add_cost acc c) zero_cost per_structure
  in
  { params; per_structure; total; total_with_caches }

let fits report device =
  report.total_with_caches.slices <= device.Device.slices
  && report.total_with_caches.luts <= device.Device.luts
  && report.total_with_caches.brams <= device.Device.brams

let utilisation report device =
  ratio report.total_with_caches.slices device.Device.slices

let instances_fitting report device =
  let cost = report.total_with_caches in
  if cost.brams = 0 && cost.luts = 0 && cost.slices = 0 then 0
  else begin
    let by_brams =
      if cost.brams = 0 then max_int else device.Device.brams / cost.brams
    in
    let by_logic =
      match device.Device.family with
      | Device.Virtex4 ->
          min (device.Device.slices / max 1 cost.slices)
            (device.Device.luts / max 1 cost.luts)
      | Device.Virtex5 ->
          (* 6-input LUTs absorb ~1.6 4-input LUTs of logic. *)
          int_of_float
            (float_of_int device.Device.luts *. 1.6
            /. float_of_int (max 1 cost.luts))
    in
    min by_brams by_logic
  end

let percentage report structure =
  match List.assoc_opt structure report.per_structure with
  | None -> 0.0
  | Some cost ->
      if report.total_with_caches.slices = 0 then 0.0
      else
        100.0 *. float_of_int cost.slices
        /. float_of_int report.total_with_caches.slices

let pp_report ppf report =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (s, c) ->
      Format.fprintf ppf "%-6s slices=%-6d luts=%-6d brams=%d (%.1f%%)@,"
        (structure_name s) c.slices c.luts c.brams (percentage report s))
    report.per_structure;
  Format.fprintf ppf "total (no caches): slices=%d luts=%d brams=%d@,"
    report.total.slices report.total.luts report.total.brams;
  Format.fprintf ppf "total (w/ caches): slices=%d luts=%d brams=%d@]"
    report.total_with_caches.slices report.total_with_caches.luts
    report.total_with_caches.brams
