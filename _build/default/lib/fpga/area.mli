(** Parametric FPGA area model, calibrated against Table 4.

    The paper reports, for the reference 4-wide configuration, a total of
    12 273 slices / 17 175 4-input LUTs / 7 BRAMs with a per-structure
    percentage breakdown (Fetch 25 %, Dispatch 9 %, ..., caches excluded
    from the total). We turn that into a parametric model: each structure
    has a reference cost (its published share of the totals) and a scaling
    law in the processor parameters, so non-reference configurations can
    be sized and checked against a device. Caches cost about 1000 slices
    plus tag BRAMs, per §V. *)

(** Parameters that determine structure sizes. Mirrors the paper's
    reference configuration in {!reference_params}. *)
type params = {
  width : int;            (** issue width N *)
  ifq_entries : int;
  decouple_entries : int;
  rob_entries : int;
  lsq_entries : int;
  arch_regs : int;
  bht_entries : int;
  history_bits : int;
  pht_entries : int;
  btb_entries : int;
  ras_depth : int;
  with_icache : bool;
  with_dcache : bool;
}

val reference_params : params
(** 4-wide, IFQ 4, ROB 16, LSQ 8, the paper's predictor, caches present.
    As in Table 4, {!report}[.total] always excludes the caches. *)

type structure =
  | Fetch_stage      (** includes the IFQ *)
  | Dispatch_stage   (** includes the decouple buffer *)
  | Issue_stage
  | Lsq_stage        (** Lsq_refresh logic *)
  | Writeback_stage
  | Commit_stage
  | Rename_table
  | Reorder_buffer
  | Lsq_structure
  | Branch_predictor
  | Dcache
  | Icache

val structure_name : structure -> string
val structures : structure list

type cost = { slices : int; luts : int; brams : int }

type report = {
  params : params;
  per_structure : (structure * cost) list;
  total : cost;          (** excluding caches, as in Table 4 *)
  total_with_caches : cost;
}

val estimate : params -> report

val fits : report -> Device.t -> bool
(** Does the design (including caches) fit the device? *)

val utilisation : report -> Device.t -> float
(** Slice utilisation fraction, including caches. *)

val instances_fitting : report -> Device.t -> int
(** How many copies of the design the device holds — the multi-core
    future-work check. Cost figures are calibrated on Virtex-4 slices;
    on Virtex-5 parts (whose slices hold 4 six-input LUTs instead of 2
    four-input ones) the check uses LUT capacity with a 1.6x density
    factor for the wider LUTs. *)

val percentage : report -> structure -> float
(** Share of [total_with_caches] slices attributed to a structure, in
    percent — the quantity tabulated in Table 4. *)

val pp_report : Format.formatter -> report -> unit
