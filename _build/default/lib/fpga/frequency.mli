(** Minor-cycle frequency model.

    The paper achieves 84 MHz (Virtex-4) and 105 MHz (Virtex-5) for the
    serial implementation. It also reports that a truly parallel 4-wide
    Fetch was 22 % slower (besides costing 4x the area) — the observation
    that motivated the serial execution model. We encode that datum as a
    width-dependent degradation so the serial-vs-parallel trade-off can be
    swept in the ablation bench. *)

type implementation = Serial | Parallel of { width : int }

val minor_cycle_mhz : Device.t -> implementation -> float
(** Serial: the device's published frequency. Parallel: degraded by 22 %
    at width 4, scaled as [1 - 0.22 * log2 width / log2 4] (a parallel
    1-wide unit {e is} the serial unit). *)

val area_multiplier : implementation -> float
(** Parallel hardware replicates per-slot logic: 4x at width 4 (the
    paper's measurement), modelled as [width] replicas. *)
