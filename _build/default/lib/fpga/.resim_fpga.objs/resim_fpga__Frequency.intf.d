lib/fpga/frequency.mli: Device
