lib/fpga/throughput.ml: Int64
