lib/fpga/frequency.ml: Device
