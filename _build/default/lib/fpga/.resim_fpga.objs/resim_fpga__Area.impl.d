lib/fpga/area.ml: Device Float Format List
