lib/fpga/area.mli: Device Format
