lib/fpga/throughput.mli:
