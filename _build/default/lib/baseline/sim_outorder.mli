(** Execution-driven baseline — the `sim-outorder` analog.

    An execution-driven timing simulator fuses functional execution with
    the timing model in a single run: every simulation repeats the
    functional work (interpretation, speculative wrong-path execution and
    rollback, branch prediction) alongside the cycle accounting. ReSim's
    trace-driven design factors that work out into one offline trace
    generation, amortised across every timing run of a design-space
    sweep.

    This module is that fused baseline: one call interprets the program,
    models mis-speculation by actually executing down wrong paths, and
    runs the full ReSim timing model on the fly. Its *simulated* results
    agree with trace-driven ReSim on the same program and configuration
    (asserted by integration tests); what differs is the *host* cost,
    measured by the Bechamel benches:

    - [run] — the baseline: functional + timing, every time;
    - trace-driven ReSim — {!Resim_core.Engine.run} on a pre-built trace.

    This is also the stand-in for the paper's software-simulator
    comparison row (Table 2, sim-outorder at 0.30 MIPS on a 2.4 GHz
    Xeon): Table 2's software rows are published constants, and the bench
    reports our measured host MIPS for both modes next to them. *)

type result = {
  outcome : Resim_core.Resim.outcome;
  functional_instructions : int;
      (** instructions interpreted, wrong paths included *)
}

val run :
  ?config:Resim_core.Config.t ->
  ?max_instructions:int ->
  Resim_isa.Program.t ->
  result
(** Execute and time [program] in one fused pass. *)

val functional_only : ?max_steps:int -> Resim_isa.Program.t -> int
(** The `sim-fast` analog: pure functional simulation, no timing.
    Returns instructions executed; used to price trace generation. *)
