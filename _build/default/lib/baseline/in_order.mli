(** In-order scalar pipeline model — the ProtoFlex-style 5-stage
    baseline.

    Consumes the same pre-decoded trace as ReSim but models a classic
    scalar in-order pipeline: CPI 1 plus stalls for load-use hazards,
    multi-cycle units, taken branches, mispredictions and cache misses.
    Used to quantify how much of ReSim's simulated IPC comes from
    out-of-order issue (an ablation the paper's related-work section
    implies when comparing against ProtoFlex's simple pipeline). *)

type config = {
  load_use_stall : int;       (** cycles between a load and its user *)
  mult_stall : int;
  div_stall : int;
  taken_branch_bubble : int;  (** fetch bubble on every taken branch *)
  mispredict_penalty : int;   (** extra cycles per wrong-path block *)
  miss_latency : int;         (** D-cache miss stall *)
  dcache : Resim_cache.Cache.config;
}

val default_config : config

type result = {
  instructions : int64;   (** correct-path instructions timed *)
  cycles : int64;
  ipc : float;
}

val simulate : ?config:config -> Resim_trace.Record.t array -> result
(** Wrong-path records contribute the misprediction penalty but are not
    individually timed (an in-order machine squashes them in the front
    end). *)
