type config = {
  load_use_stall : int;
  mult_stall : int;
  div_stall : int;
  taken_branch_bubble : int;
  mispredict_penalty : int;
  miss_latency : int;
  dcache : Resim_cache.Cache.config;
}

let default_config =
  { load_use_stall = 1;
    mult_stall = 2;
    div_stall = 9;
    taken_branch_bubble = 1;
    mispredict_penalty = 3;
    miss_latency = 18;
    dcache = Resim_cache.Cache.Perfect }

type result = { instructions : int64; cycles : int64; ipc : float }

let simulate ?(config = default_config) records =
  let dcache = Resim_cache.Cache.create config.dcache in
  let cycles = ref 0L in
  let instructions = ref 0L in
  let add n = cycles := Int64.add !cycles (Int64.of_int n) in
  (* Destination register of the previous instruction if it was a load,
     for load-use detection. *)
  let pending_load_dest = ref 0 in
  let in_wrong_block = ref false in
  Array.iter
    (fun (record : Resim_trace.Record.t) ->
      if record.wrong_path then begin
        (* One penalty per wrong-path block: the in-order front end
           squashes the block wholesale at resolution. *)
        if not !in_wrong_block then add config.mispredict_penalty;
        in_wrong_block := true
      end
      else begin
        in_wrong_block := false;
        instructions := Int64.add !instructions 1L;
        add 1;
        let uses_pending =
          !pending_load_dest > 0
          && (record.src1 = !pending_load_dest
             || record.src2 = !pending_load_dest)
        in
        if uses_pending then add config.load_use_stall;
        pending_load_dest := 0;
        (match record.payload with
        | Resim_trace.Record.Other { op_class = Resim_trace.Record.Mult } ->
            add config.mult_stall
        | Resim_trace.Record.Other { op_class = Resim_trace.Record.Divide } ->
            add config.div_stall
        | Resim_trace.Record.Other { op_class = Resim_trace.Record.Alu } -> ()
        | Resim_trace.Record.Branch { taken; _ } ->
            if taken then add config.taken_branch_bubble
        | Resim_trace.Record.Memory { is_load; address } ->
            let latency =
              Resim_cache.Cache.access dcache ~addr:address
                ~write:(not is_load)
            in
            let hit = (Resim_cache.Cache.timing dcache).hit_latency in
            if latency > hit then add (latency - hit);
            if is_load then pending_load_dest := record.dest)
      end)
    records;
  let ipc =
    if Int64.equal !cycles 0L then 0.0
    else Int64.to_float !instructions /. Int64.to_float !cycles
  in
  { instructions = !instructions; cycles = !cycles; ipc }
