lib/baseline/in_order.ml: Array Int64 Resim_cache Resim_trace
