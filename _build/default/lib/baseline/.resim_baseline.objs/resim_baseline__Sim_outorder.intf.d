lib/baseline/sim_outorder.mli: Resim_core Resim_isa
