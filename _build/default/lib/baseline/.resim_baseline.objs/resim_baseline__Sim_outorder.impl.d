lib/baseline/sim_outorder.ml: Resim_core Resim_isa Resim_tracegen
