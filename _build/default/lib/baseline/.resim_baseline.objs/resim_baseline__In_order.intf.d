lib/baseline/in_order.mli: Resim_cache Resim_trace
