type result = {
  outcome : Resim_core.Resim.outcome;
  functional_instructions : int;
}

let run ?(config = Resim_core.Config.reference) ?(max_instructions = 20_000_000)
    program =
  let generator =
    { Resim_tracegen.Generator.predictor = config.predictor;
      wrong_path_limit = config.rob_entries + config.ifq_entries;
      max_instructions }
  in
  (* Functional pass: interpretation, branch prediction, speculative
     wrong-path execution with rollback. *)
  let generated = Resim_tracegen.Generator.run ~config:generator program in
  (* Timing pass over the freshly produced records, as an
     execution-driven simulator performs inline. *)
  let outcome = Resim_core.Resim.simulate_trace ~config generated.records in
  { outcome;
    functional_instructions =
      generated.correct_path + generated.wrong_path }

let functional_only ?max_steps program =
  let machine = Resim_isa.Machine.create ~program () in
  Resim_isa.Interpreter.run ?max_steps machine program
