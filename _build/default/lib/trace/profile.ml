type branch_site = {
  pc : int;
  executions : int;
  taken : int;
  taken_rate : float;
}

let correct_path records =
  Array.to_seq records
  |> Seq.filter (fun (r : Record.t) -> not r.wrong_path)

let hot_branches ?(top = 10) records =
  let sites = Hashtbl.create 64 in
  Seq.iter
    (fun (record : Record.t) ->
      match record.payload with
      | Record.Branch { kind = Resim_isa.Opcode.Cond; taken; _ } ->
          let executions, taken_count =
            Option.value (Hashtbl.find_opt sites record.pc) ~default:(0, 0)
          in
          Hashtbl.replace sites record.pc
            (executions + 1, taken_count + (if taken then 1 else 0))
      | Record.Branch _ | Record.Memory _ | Record.Other _ -> ())
    (correct_path records);
  Hashtbl.fold
    (fun pc (executions, taken) acc ->
      { pc; executions; taken;
        taken_rate = float_of_int taken /. float_of_int executions }
      :: acc)
    sites []
  |> List.sort (fun a b -> compare b.executions a.executions)
  |> List.filteri (fun i _ -> i < top)

let validate_page_bytes page_bytes =
  if page_bytes <= 0 || page_bytes land (page_bytes - 1) <> 0 then
    invalid_arg "Profile: page_bytes must be a power of two"

let page_counts ~page_bytes records =
  validate_page_bytes page_bytes;
  let pages = Hashtbl.create 64 in
  Seq.iter
    (fun (record : Record.t) ->
      match record.payload with
      | Record.Memory { address; _ } ->
          let page = address land lnot (page_bytes - 1) in
          Hashtbl.replace pages page
            (1 + Option.value (Hashtbl.find_opt pages page) ~default:0)
      | Record.Branch _ | Record.Other _ -> ())
    (correct_path records);
  pages

let hot_pages ?(top = 10) ?(page_bytes = 4096) records =
  Hashtbl.fold (fun page count acc -> (page, count) :: acc)
    (page_counts ~page_bytes records) []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < top)

type mix = {
  alu : float;
  mult : float;
  divide : float;
  load : float;
  store : float;
  branch : float;
}

let instruction_mix records =
  let alu = ref 0 and mult = ref 0 and divide = ref 0 in
  let load = ref 0 and store = ref 0 and branch = ref 0 in
  let total = ref 0 in
  Seq.iter
    (fun (record : Record.t) ->
      incr total;
      match record.payload with
      | Record.Other { op_class = Record.Alu } -> incr alu
      | Record.Other { op_class = Record.Mult } -> incr mult
      | Record.Other { op_class = Record.Divide } -> incr divide
      | Record.Memory { is_load = true; _ } -> incr load
      | Record.Memory { is_load = false; _ } -> incr store
      | Record.Branch _ -> incr branch)
    (correct_path records);
  let fraction counter =
    if !total = 0 then 0.0 else float_of_int !counter /. float_of_int !total
  in
  { alu = fraction alu; mult = fraction mult; divide = fraction divide;
    load = fraction load; store = fraction store; branch = fraction branch }

let memory_footprint_bytes records =
  let page_bytes = 4096 in
  page_bytes * Hashtbl.length (page_counts ~page_bytes records)

let pp_report ppf records =
  let mix = instruction_mix records in
  Format.fprintf ppf
    "@[<v>mix: %.1f%% alu, %.1f%% mult, %.1f%% div, %.1f%% load, %.1f%% \
     store, %.1f%% branch@,footprint: %d KB@,hot branches:@,"
    (100. *. mix.alu) (100. *. mix.mult) (100. *. mix.divide)
    (100. *. mix.load) (100. *. mix.store) (100. *. mix.branch)
    (memory_footprint_bytes records / 1024);
  List.iter
    (fun site ->
      Format.fprintf ppf "  pc %-8d x%-8d taken %5.1f%%@," site.pc
        site.executions
        (100.0 *. site.taken_rate))
    (hot_branches ~top:5 records);
  Format.fprintf ppf "hot pages:@,";
  List.iter
    (fun (page, accesses) ->
      Format.fprintf ppf "  %#10x x%d@," page accesses)
    (hot_pages ~top:5 records);
  Format.fprintf ppf "@]"
