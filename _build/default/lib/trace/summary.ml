type t = {
  total : int;
  correct_path : int;
  wrong_path : int;
  branches : int;
  cond_branches : int;
  taken_branches : int;
  loads : int;
  stores : int;
  mults : int;
  divides : int;
}

let zero =
  { total = 0; correct_path = 0; wrong_path = 0; branches = 0;
    cond_branches = 0; taken_branches = 0; loads = 0; stores = 0;
    mults = 0; divides = 0 }

let add acc (record : Record.t) =
  let acc =
    { acc with
      total = acc.total + 1;
      correct_path = acc.correct_path + (if record.wrong_path then 0 else 1);
      wrong_path = acc.wrong_path + (if record.wrong_path then 1 else 0) }
  in
  match record.payload with
  | Branch { kind; taken; _ } ->
      { acc with
        branches = acc.branches + 1;
        cond_branches = (acc.cond_branches + match kind with Cond -> 1 | _ -> 0);
        taken_branches = acc.taken_branches + (if taken then 1 else 0) }
  | Memory { is_load; _ } ->
      if is_load then { acc with loads = acc.loads + 1 }
      else { acc with stores = acc.stores + 1 }
  | Other { op_class = Mult } -> { acc with mults = acc.mults + 1 }
  | Other { op_class = Divide } -> { acc with divides = acc.divides + 1 }
  | Other { op_class = Alu } -> acc

let of_records records = Array.fold_left add zero records

let wrong_path_fraction t =
  if t.total = 0 then 0.0 else float_of_int t.wrong_path /. float_of_int t.total

let pp ppf t =
  Format.fprintf ppf
    "@[<v>records: %d (%d correct, %d wrong-path = %.1f%%)@,\
     branches: %d (%d conditional, %d taken)@,\
     memory: %d loads, %d stores@,\
     long-latency: %d mult, %d div@]"
    t.total t.correct_path t.wrong_path (100.0 *. wrong_path_fraction t)
    t.branches t.cond_branches t.taken_branches t.loads t.stores t.mults
    t.divides
