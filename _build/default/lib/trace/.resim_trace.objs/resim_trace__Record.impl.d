lib/trace/record.ml: Format Resim_isa
