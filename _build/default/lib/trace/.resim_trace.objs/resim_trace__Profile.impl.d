lib/trace/profile.ml: Array Format Hashtbl List Option Record Resim_isa Seq
