lib/trace/bitio.ml: Buffer Char String
