lib/trace/bitio.mli:
