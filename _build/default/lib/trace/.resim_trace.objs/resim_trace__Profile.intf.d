lib/trace/profile.mli: Format Record
