lib/trace/codec.ml: Array Bitio Buffer Char Fun Int64 Printf Record Resim_isa String
