lib/trace/summary.ml: Array Format Record
