lib/trace/record.mli: Format Resim_isa
