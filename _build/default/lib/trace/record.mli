(** Pre-decoded trace records.

    The paper's trace uses three formats — Branch (B), Memory (M) and
    Other (O) — “each with its own fields and length”, every one carrying
    a *Tag Bit* that marks wrong-path instructions. Because the format is
    pre-decoded and ISA-generic, ReSim works for any ISA that can be
    described by it; the timing simulator consumes these records and never
    executes anything. *)

type op_class = Alu | Mult | Divide

type payload =
  | Branch of {
      kind : Resim_isa.Opcode.branch_kind;
      taken : bool;     (** actual outcome on the traced path *)
      target : int;     (** actual target instruction index *)
    }
  | Memory of { is_load : bool; address : int (** byte address *) }
  | Other of { op_class : op_class }

type t = {
  pc : int;             (** instruction index *)
  wrong_path : bool;    (** the Tag Bit *)
  dest : int;           (** destination register, 0 = none *)
  src1 : int;           (** first source register, 0 = none *)
  src2 : int;           (** second source register, 0 = none *)
  payload : payload;
}

val is_branch : t -> bool
val is_memory : t -> bool
val is_load : t -> bool
val is_store : t -> bool

val of_observation : wrong_path:bool -> Resim_isa.Interpreter.observation -> t
(** Pre-decode one executed instruction into its trace record. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
