type op_class = Alu | Mult | Divide

type payload =
  | Branch of {
      kind : Resim_isa.Opcode.branch_kind;
      taken : bool;
      target : int;
    }
  | Memory of { is_load : bool; address : int }
  | Other of { op_class : op_class }

type t = {
  pc : int;
  wrong_path : bool;
  dest : int;
  src1 : int;
  src2 : int;
  payload : payload;
}

let is_branch r = match r.payload with Branch _ -> true | Memory _ | Other _ -> false
let is_memory r = match r.payload with Memory _ -> true | Branch _ | Other _ -> false

let is_load r =
  match r.payload with
  | Memory { is_load; _ } -> is_load
  | Branch _ | Other _ -> false

let is_store r =
  match r.payload with
  | Memory { is_load; _ } -> not is_load
  | Branch _ | Other _ -> false

let reg_field = function
  | Some reg -> Resim_isa.Reg.to_int reg
  | None -> 0

let of_observation ~wrong_path (obs : Resim_isa.Interpreter.observation) =
  let instr = obs.instr in
  let payload =
    match (obs.control, obs.effective_address) with
    | Some { kind; taken; target }, _ -> Branch { kind; taken; target }
    | None, Some address ->
        let is_load =
          match Resim_isa.Opcode.op_class instr.op with
          | Load -> true
          | Store -> false
          | Int_alu | Int_mult | Int_div | Ctrl -> false
        in
        Memory { is_load; address }
    | None, None ->
        let op_class =
          match Resim_isa.Opcode.op_class instr.op with
          | Int_mult -> Mult
          | Int_div -> Divide
          | Int_alu | Load | Store | Ctrl -> Alu
        in
        Other { op_class }
  in
  { pc = obs.index;
    wrong_path;
    dest = reg_field (Resim_isa.Instruction.destination instr);
    src1 =
      (match Resim_isa.Instruction.sources instr with
      | s :: _ -> Resim_isa.Reg.to_int s
      | [] -> 0);
    src2 =
      (match Resim_isa.Instruction.sources instr with
      | _ :: s :: _ -> Resim_isa.Reg.to_int s
      | [ _ ] | [] -> 0);
    payload }

let equal a b = a = b

let pp_kind ppf (kind : Resim_isa.Opcode.branch_kind) =
  Format.pp_print_string ppf
    (match kind with
    | Cond -> "cond" | Jump -> "jump" | Call -> "call"
    | Ret -> "ret" | Indirect -> "ind")

let pp ppf r =
  let tag = if r.wrong_path then "*" else " " in
  match r.payload with
  | Branch { kind; taken; target } ->
      Format.fprintf ppf "%sB pc=%d %a %s -> %d" tag r.pc pp_kind kind
        (if taken then "taken" else "not-taken") target
  | Memory { is_load; address } ->
      Format.fprintf ppf "%sM pc=%d %s @%#x" tag r.pc
        (if is_load then "load" else "store") address
  | Other { op_class } ->
      Format.fprintf ppf "%sO pc=%d %s" tag r.pc
        (match op_class with Alu -> "alu" | Mult -> "mult" | Divide -> "div")
