(** Trace analysis: the questions an architect asks of a trace before
    simulating it — which branches dominate and how biased they are,
    where the memory traffic lands, and what the instruction mix is.
    Only correct-path records are profiled. *)

type branch_site = {
  pc : int;
  executions : int;
  taken : int;
  taken_rate : float;
}

val hot_branches : ?top:int -> Record.t array -> branch_site list
(** Most frequently executed conditional-branch sites, descending;
    [top] defaults to 10. *)

val hot_pages : ?top:int -> ?page_bytes:int -> Record.t array -> (int * int) list
(** (page base address, accesses) for the most-touched memory pages;
    [page_bytes] defaults to 4096 and must be a power of two. *)

type mix = {
  alu : float;
  mult : float;
  divide : float;
  load : float;
  store : float;
  branch : float;
}

val instruction_mix : Record.t array -> mix
(** Fractions of correct-path records per class (they sum to 1 for a
    non-empty trace). *)

val memory_footprint_bytes : Record.t array -> int
(** Size of the touched address range at page granularity. *)

val pp_report : Format.formatter -> Record.t array -> unit
