(** Binary trace codec.

    Two bit-packed encodings of {!Record.t} streams:

    - [Fixed] — fixed-width fields with absolute addresses and targets,
      our reconstruction of the paper's format. It lands in the published
      41–47 bits/instruction band on the SPEC-like workloads (Table 3).
    - [Compact] — delta/zig-zag encoded addresses, targets and PCs; an
      extension studied in the trace-bandwidth ablation.

    Every stream starts with a self-describing header (magic, version,
    format, record count), so [decode] needs no side information. *)

type format = Fixed | Compact

exception Corrupt of string
(** Raised by [decode]/[read_file] on malformed input. *)

val encode : ?format:format -> Record.t array -> string
(** Serialise; default format [Fixed]. *)

val decode : string -> Record.t array * format

val encoded_bits : ?format:format -> Record.t array -> int
(** Payload size in bits, excluding the stream header — the quantity the
    paper reports per instruction. *)

val bits_per_instruction : ?format:format -> Record.t array -> float
(** [encoded_bits / Array.length records]; 0 for an empty trace. *)

val write_file : ?format:format -> string -> Record.t array -> unit
val read_file : string -> Record.t array * format
