(** Saturating n-bit counters, the building block of direction
    predictors. A 2-bit counter predicts taken when its value is in the
    upper half of its range. *)

type t

val create : ?bits:int -> ?initial:int -> unit -> t
(** Default 2 bits, initialised to the weakly-taken threshold value. *)

val value : t -> int
val predict_taken : t -> bool
val train : t -> taken:bool -> unit
(** Increment towards taken, decrement towards not-taken, saturating. *)

val max_value : t -> int
