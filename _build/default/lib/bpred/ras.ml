type t = {
  slots : int array;
  mutable top : int;      (* index of the next free slot *)
  mutable occupancy : int;
}

let create depth =
  if depth <= 0 then invalid_arg "Ras.create: depth must be positive";
  { slots = Array.make depth 0; top = 0; occupancy = 0 }

let depth t = Array.length t.slots

let push t address =
  t.slots.(t.top) <- address;
  t.top <- (t.top + 1) mod depth t;
  if t.occupancy < depth t then t.occupancy <- t.occupancy + 1

let pop t =
  if t.occupancy = 0 then None
  else begin
    t.top <- (t.top + depth t - 1) mod depth t;
    t.occupancy <- t.occupancy - 1;
    Some t.slots.(t.top)
  end

let occupancy t = t.occupancy

let snapshot t =
  { slots = Array.copy t.slots; top = t.top; occupancy = t.occupancy }

let restore t saved =
  if depth t <> depth saved then
    invalid_arg "Ras.restore: depth mismatch";
  Array.blit saved.slots 0 t.slots 0 (depth t);
  t.top <- saved.top;
  t.occupancy <- saved.occupancy
