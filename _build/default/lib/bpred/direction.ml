type config =
  | Perfect
  | Static_taken
  | Static_not_taken
  | Bimodal of { table_entries : int }
  | Two_level of {
      bht_entries : int;
      history_bits : int;
      pht_entries : int;
    }
  | Gshare of { history_bits : int; pht_entries : int }

let two_level_default =
  Two_level { bht_entries = 4; history_bits = 8; pht_entries = 4096 }

type state =
  | S_fixed of bool option
      (** [None] = perfect, [Some b] = static direction [b] *)
  | S_bimodal of Saturating.t array
  | S_two_level of {
      bht : int array;
      hist_mask : int;
      history_bits : int;
      pht : Saturating.t array;
    }
  | S_gshare of {
      mutable history : int;
      hist_mask : int;
      history_bits : int;
      pht : Saturating.t array;
    }

type t = { config : config; state : state }

let positive name value =
  if value <= 0 then
    invalid_arg (Printf.sprintf "Direction.create: %s must be positive" name)

let counters entries = Array.init entries (fun _ -> Saturating.create ())

let create config =
  let state =
    match config with
    | Perfect -> S_fixed None
    | Static_taken -> S_fixed (Some true)
    | Static_not_taken -> S_fixed (Some false)
    | Bimodal { table_entries } ->
        positive "table_entries" table_entries;
        S_bimodal (counters table_entries)
    | Two_level { bht_entries; history_bits; pht_entries } ->
        positive "bht_entries" bht_entries;
        positive "history_bits" history_bits;
        positive "pht_entries" pht_entries;
        S_two_level
          { bht = Array.make bht_entries 0;
            hist_mask = (1 lsl history_bits) - 1;
            history_bits;
            pht = counters pht_entries }
    | Gshare { history_bits; pht_entries } ->
        positive "history_bits" history_bits;
        positive "pht_entries" pht_entries;
        S_gshare
          { history = 0;
            hist_mask = (1 lsl history_bits) - 1;
            history_bits;
            pht = counters pht_entries }
  in
  { config; state }

let config t = t.config

let bits_of n =
  let rec loop n acc = if n <= 1 then acc else loop (n lsr 1) (acc + 1) in
  loop n 0

(* PHT index of a two-level predictor: the history register concatenated
   with as many low PC bits as the table leaves room for (e.g. 8 history
   bits + 4 PC bits fill the paper's 4096-entry PHT). *)
let pattern_index ~pc ~history ~history_bits ~pht_entries =
  let pc_bits = max 0 (bits_of pht_entries - history_bits) in
  let index = (history lsl pc_bits) lor (pc land ((1 lsl pc_bits) - 1)) in
  index mod pht_entries

let predict t ~pc ~actual =
  match t.state with
  | S_fixed None -> actual
  | S_fixed (Some direction) -> direction
  | S_bimodal table ->
      Saturating.predict_taken table.(pc mod Array.length table)
  | S_two_level { bht; pht; history_bits; hist_mask = _ } ->
      let history = bht.(pc mod Array.length bht) in
      let index =
        pattern_index ~pc ~history ~history_bits
          ~pht_entries:(Array.length pht)
      in
      Saturating.predict_taken pht.(index)
  | S_gshare { history; pht; history_bits; hist_mask = _ } ->
      let index =
        pattern_index ~pc ~history:(history lxor pc) ~history_bits
          ~pht_entries:(Array.length pht)
      in
      Saturating.predict_taken pht.(index)

let update t ~pc ~taken =
  match t.state with
  | S_fixed _ -> ()
  | S_bimodal table ->
      Saturating.train table.(pc mod Array.length table) ~taken
  | S_two_level { bht; hist_mask; history_bits; pht } ->
      let slot = pc mod Array.length bht in
      let history = bht.(slot) in
      let index =
        pattern_index ~pc ~history ~history_bits
          ~pht_entries:(Array.length pht)
      in
      Saturating.train pht.(index) ~taken;
      bht.(slot) <- ((history lsl 1) lor (if taken then 1 else 0)) land hist_mask
  | S_gshare g ->
      let index =
        pattern_index ~pc ~history:(g.history lxor pc)
          ~history_bits:g.history_bits ~pht_entries:(Array.length g.pht)
      in
      Saturating.train g.pht.(index) ~taken;
      g.history <-
        ((g.history lsl 1) lor (if taken then 1 else 0)) land g.hist_mask

let snapshot t =
  let copy_counter c =
    let bits = bits_of (Saturating.max_value c + 1) in
    Saturating.create ~bits ~initial:(Saturating.value c) ()
  in
  let copy_counters table = Array.map copy_counter table in
  let state =
    match t.state with
    | S_fixed f -> S_fixed f
    | S_bimodal table -> S_bimodal (copy_counters table)
    | S_two_level { bht; hist_mask; history_bits; pht } ->
        S_two_level
          { bht = Array.copy bht; hist_mask; history_bits;
            pht = copy_counters pht }
    | S_gshare { history; hist_mask; history_bits; pht } ->
        S_gshare { history; hist_mask; history_bits; pht = copy_counters pht }
  in
  { config = t.config; state }
