(** Branch direction predictors.

    The paper's reference configuration is a two-level predictor with a
    4-entry Branch History Table, 8-bit history registers and a 4096-entry
    Pattern History Table of 2-bit counters ({!two_level_default}); a
    perfect predictor is used for the FAST comparison. Because ReSim's
    predictor generator is parametric, so is ours. *)

type config =
  | Perfect       (** always right — the oracle used in Table 1 (right) *)
  | Static_taken
  | Static_not_taken
  | Bimodal of { table_entries : int }
      (** per-PC 2-bit counters *)
  | Two_level of {
      bht_entries : int;    (** branch-history-table entries *)
      history_bits : int;   (** history-register length *)
      pht_entries : int;    (** pattern-history-table entries *)
    }
  | Gshare of { history_bits : int; pht_entries : int }

val two_level_default : config
(** BHT 4, history 8, PHT 4096 — the paper's Table 1 (left) predictor. *)

type t

val create : config -> t
val config : t -> config

val predict : t -> pc:int -> actual:bool -> bool
(** Predicted direction for the branch at instruction index [pc].
    [actual] is consulted only by [Perfect]. *)

val update : t -> pc:int -> taken:bool -> unit
(** Commit-time training. No-op for static and perfect predictors. *)

val snapshot : t -> t
(** Deep copy, for engine/generator alignment experiments. *)
