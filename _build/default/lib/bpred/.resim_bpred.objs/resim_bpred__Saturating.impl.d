lib/bpred/saturating.ml:
