lib/bpred/predictor.mli: Btb Direction Ras Resim_isa
