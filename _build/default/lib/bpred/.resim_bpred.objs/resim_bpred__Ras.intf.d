lib/bpred/ras.mli:
