lib/bpred/saturating.mli:
