lib/bpred/btb.mli:
