lib/bpred/predictor.ml: Btb Direction Ras Resim_isa
