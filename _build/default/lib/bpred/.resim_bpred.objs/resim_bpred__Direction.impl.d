lib/bpred/direction.ml: Array Printf Saturating
