lib/bpred/direction.mli:
