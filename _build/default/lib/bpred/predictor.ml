type config = {
  direction : Direction.config;
  btb : Btb.config;
  ras_depth : int;
}

let default_config =
  { direction = Direction.two_level_default;
    btb = Btb.default_config;
    ras_depth = 16 }

let perfect_config = { default_config with direction = Direction.Perfect }

type t = {
  config : config;
  direction : Direction.t;
  btb : Btb.t;
  ras : Ras.t;
  mutable predictions : int;
  mutable correct : int;
}

type prediction = {
  taken : bool;
  target : int option;
  from_ras : bool;
}

let create config =
  { config;
    direction = Direction.create config.direction;
    btb = Btb.create config.btb;
    ras = Ras.create config.ras_depth;
    predictions = 0;
    correct = 0 }

let config t = t.config

let is_oracle t = t.config.direction = Direction.Perfect

let predict t ~pc ~kind ~fallthrough ~actual_taken ~actual_target =
  t.predictions <- t.predictions + 1;
  let oracle = is_oracle t in
  match (kind : Resim_isa.Opcode.branch_kind) with
  | Cond ->
      let taken = Direction.predict t.direction ~pc ~actual:actual_taken in
      if not taken then { taken = false; target = None; from_ras = false }
      else if oracle then
        { taken; target = Some actual_target; from_ras = false }
      else { taken; target = Btb.lookup t.btb ~pc; from_ras = false }
  | Jump ->
      if oracle then
        { taken = true; target = Some actual_target; from_ras = false }
      else { taken = true; target = Btb.lookup t.btb ~pc; from_ras = false }
  | Call ->
      Ras.push t.ras fallthrough;
      if oracle then
        { taken = true; target = Some actual_target; from_ras = false }
      else { taken = true; target = Btb.lookup t.btb ~pc; from_ras = false }
  | Ret -> (
      if oracle then begin
        ignore (Ras.pop t.ras);
        { taken = true; target = Some actual_target; from_ras = true }
      end
      else
        match Ras.pop t.ras with
        | Some target -> { taken = true; target = Some target; from_ras = true }
        | None ->
            { taken = true; target = Btb.lookup t.btb ~pc; from_ras = false })
  | Indirect ->
      if oracle then
        { taken = true; target = Some actual_target; from_ras = false }
      else { taken = true; target = Btb.lookup t.btb ~pc; from_ras = false }

let update t ~pc ~kind ~taken ~target =
  (match (kind : Resim_isa.Opcode.branch_kind) with
  | Cond -> Direction.update t.direction ~pc ~taken
  | Jump | Call | Ret | Indirect -> ());
  match (kind : Resim_isa.Opcode.branch_kind) with
  | Ret -> ()
  | Cond | Jump | Call | Indirect ->
      if taken then Btb.update t.btb ~pc ~target

let ras_snapshot t = Ras.snapshot t.ras
let ras_restore t saved = Ras.restore t.ras saved

let predictions_made t = t.predictions
let direction_hits t = t.correct
let record_resolution t ~correct = if correct then t.correct <- t.correct + 1
