type config = { entries : int; associativity : int }

let default_config = { entries = 512; associativity = 1 }

type way = { mutable tag : int; mutable target : int; mutable stamp : int }
(* tag = -1 marks an invalid way; [stamp] implements LRU. *)

type t = { config : config; sets : way array array; mutable clock : int }

let create config =
  if config.entries <= 0 || config.associativity <= 0 then
    invalid_arg "Btb.create: entries and associativity must be positive";
  if config.entries mod config.associativity <> 0 then
    invalid_arg "Btb.create: associativity must divide entries";
  let set_count = config.entries / config.associativity in
  let sets =
    Array.init set_count (fun _ ->
        Array.init config.associativity (fun _ ->
            { tag = -1; target = 0; stamp = 0 }))
  in
  { config; sets; clock = 0 }

let config t = t.config

let set_count t = Array.length t.sets

let split t pc =
  let index = pc mod set_count t in
  let tag = pc / set_count t in
  (index, tag)

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let lookup t ~pc =
  let index, tag = split t pc in
  let set = t.sets.(index) in
  let rec scan i =
    if i >= Array.length set then None
    else if set.(i).tag = tag then begin
      set.(i).stamp <- tick t;
      Some set.(i).target
    end
    else scan (i + 1)
  in
  scan 0

let update t ~pc ~target =
  let index, tag = split t pc in
  let set = t.sets.(index) in
  let rec find_slot i best =
    if i >= Array.length set then best
    else if set.(i).tag = tag then i
    else
      let best =
        if set.(i).tag = -1 && set.(best).tag <> -1 then i
        else if
          set.(i).tag <> -1 && set.(best).tag <> -1
          && set.(i).stamp < set.(best).stamp
        then i
        else best
      in
      find_slot (i + 1) best
  in
  let slot = find_slot 1 0 in
  (* If an exact tag match exists anywhere, prefer it over the LRU way. *)
  let slot =
    let rec exact i =
      if i >= Array.length set then slot
      else if set.(i).tag = tag then i
      else exact (i + 1)
    in
    exact 0
  in
  set.(slot).tag <- tag;
  set.(slot).target <- target;
  set.(slot).stamp <- tick t

let entries_used t =
  Array.fold_left
    (fun acc set ->
      Array.fold_left (fun acc way -> if way.tag >= 0 then acc + 1 else acc)
        acc set)
    0 t.sets
