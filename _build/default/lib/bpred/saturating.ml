type t = { mutable value : int; max : int; threshold : int }

let create ?(bits = 2) ?initial () =
  let max = (1 lsl bits) - 1 in
  let threshold = 1 lsl (bits - 1) in
  let value =
    match initial with
    | Some v -> (if v < 0 then 0 else if v > max then max else v)
    | None -> threshold
  in
  { value; max; threshold }

let value c = c.value
let predict_taken c = c.value >= c.threshold

let train c ~taken =
  if taken then (if c.value < c.max then c.value <- c.value + 1)
  else if c.value > 0 then c.value <- c.value - 1

let max_value c = c.max
