(** The composed branch-predictor unit of Figure 1: a direction predictor,
    a Branch Target Buffer and a Return Address Stack.

    Used at fetch to steer the front end and trained at commit, as in the
    simulated microarchitecture. When the direction predictor is
    {!Direction.Perfect} the whole unit is an oracle — directions *and*
    targets are always right, matching the paper's “perfect BP”
    configuration (Table 1, right). *)

type config = {
  direction : Direction.config;
  btb : Btb.config;
  ras_depth : int;
}

val default_config : config
(** The paper's reference predictor: two-level 4/8/4096 direction
    predictor, 512-entry direct-mapped BTB, 16-entry RAS. *)

val perfect_config : config
(** Oracle predictor for the FAST comparison. *)

type t

(** What the front end decided for one control-flow instruction. *)
type prediction = {
  taken : bool;            (** predicted direction *)
  target : int option;     (** predicted target when [taken]; [None] means
                               no target available — a misfetch *)
  from_ras : bool;         (** target came from the RAS *)
}

val create : config -> t
val config : t -> config

val predict :
  t ->
  pc:int ->
  kind:Resim_isa.Opcode.branch_kind ->
  fallthrough:int ->
  actual_taken:bool ->
  actual_target:int ->
  prediction
(** Fetch-time prediction for the control instruction at [pc].
    [actual_taken]/[actual_target] feed only the perfect oracle. Calls
    push [fallthrough] on the RAS; returns pop it. Unconditional kinds
    always predict taken. *)

val update : t -> pc:int -> kind:Resim_isa.Opcode.branch_kind -> taken:bool ->
  target:int -> unit
(** Commit-time training: conditional directions train the direction
    predictor; taken control instructions install their target in the BTB
    (returns rely on the RAS instead). *)

val ras_snapshot : t -> Ras.t
val ras_restore : t -> Ras.t -> unit
(** Squash repair: restore the RAS to its state at the mispredicted
    branch. *)

(** {1 Accuracy accounting} *)

val predictions_made : t -> int
val direction_hits : t -> int
val record_resolution : t -> correct:bool -> unit
(** Called by the engine when a branch resolves, to feed accuracy
    statistics. *)
