(** Return Address Stack.

    A circular hardware stack (the paper's default holds 16 entries):
    calls push their return address at fetch, returns pop their predicted
    target. Overflow silently wraps, exactly like the hardware structure.
    {!snapshot}/{!restore} support repair after a squash. *)

type t

val create : int -> t
(** [create depth]; raises [Invalid_argument] when [depth <= 0]. *)

val depth : t -> int
val push : t -> int -> unit
val pop : t -> int option
(** [None] when the stack is empty (the front end then falls back to the
    BTB or sequential fetch). *)

val occupancy : t -> int
val snapshot : t -> t
val restore : t -> t -> unit
(** [restore ras saved] copies [saved]'s contents into [ras]; both must
    have the same depth. *)
