(** Branch Target Buffer.

    Set-associative tag/target store with LRU replacement; the paper's
    reference configuration is 512 entries, direct-mapped
    ({!default_config}). A lookup miss on a predicted-taken branch is what
    the paper calls a *misfetch*: the front end falls through to the next
    sequential PC and pays the misfetch penalty. *)

type config = { entries : int; associativity : int }

val default_config : config
(** 512 entries, direct-mapped. *)

type t

val create : config -> t
val config : t -> config

val lookup : t -> pc:int -> int option
(** Predicted target for the branch at instruction index [pc], if the
    BTB currently holds one. *)

val update : t -> pc:int -> target:int -> unit
(** Install or refresh the target for [pc] (LRU within the set). *)

val entries_used : t -> int
(** Number of currently valid entries (for occupancy statistics). *)
