(* Trace inspection: generate a trace, write it to disk in the binary
   B/M/O format, read it back, and analyse it — format sizes, record
   mix, wrong-path structure.

     dune exec examples/trace_inspection.exe *)

let () =
  let parser = Resim_workloads.Workload.find "parser" in
  let program = Resim_workloads.Workload.program_of parser ~scale:2048 () in
  let generated = Resim_tracegen.Generator.run program in
  let records = generated.records in

  (* Round-trip through the binary codec (both encodings). *)
  let path = Filename.temp_file "resim" ".trace" in
  Resim_trace.Codec.write_file ~format:Resim_trace.Codec.Fixed path records;
  let reread, format = Resim_trace.Codec.read_file path in
  assert (format = Resim_trace.Codec.Fixed);
  assert (Array.length reread = Array.length records);
  assert (Array.for_all2 Resim_trace.Record.equal records reread);
  let size_on_disk = (Unix.stat path).Unix.st_size in
  Sys.remove path;

  Format.printf "trace round-trip through %s: OK (%d records, %d bytes)@.@."
    "the Fixed binary format" (Array.length records) size_on_disk;

  Format.printf "%a@.@." Resim_trace.Summary.pp
    (Resim_trace.Summary.of_records records);

  List.iter
    (fun (name, format) ->
      Format.printf "%s encoding: %.2f bits/instruction@." name
        (Resim_trace.Codec.bits_per_instruction ~format records))
    [ ("fixed  ", Resim_trace.Codec.Fixed);
      ("compact", Resim_trace.Codec.Compact) ];

  (* Show the first wrong-path block: the Tag-Bit mechanism at work. *)
  let first_tagged =
    Array.to_seq records
    |> Seq.mapi (fun i r -> (i, r))
    |> Seq.find (fun (_, (r : Resim_trace.Record.t)) -> r.wrong_path)
  in
  match first_tagged with
  | None -> Format.printf "@.(no mispredicted branches in this trace)@."
  | Some (index, _) ->
      Format.printf
        "@.first wrong-path block (after the mispredicted branch at \
         record %d):@."
        (index - 1);
      let stop = min (index + 6) (Array.length records) in
      for i = max 0 (index - 1) to stop - 1 do
        Format.printf "  %4d: %a@." i Resim_trace.Record.pp records.(i)
      done
