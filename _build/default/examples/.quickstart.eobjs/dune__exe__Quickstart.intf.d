examples/quickstart.mli:
