examples/quickstart.ml: Array Asm Format List Reg Resim_core Resim_fpga Resim_isa Resim_tracegen
