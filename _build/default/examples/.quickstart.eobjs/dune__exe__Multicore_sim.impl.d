examples/multicore_sim.ml: Format List Resim_core Resim_fpga Resim_multicore Resim_tracegen Resim_workloads
