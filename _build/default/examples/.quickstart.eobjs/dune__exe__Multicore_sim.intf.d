examples/multicore_sim.mli:
