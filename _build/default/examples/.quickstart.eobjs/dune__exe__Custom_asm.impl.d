examples/custom_asm.ml: Format List Resim_core Resim_fpga Resim_isa Resim_trace Resim_tracegen
