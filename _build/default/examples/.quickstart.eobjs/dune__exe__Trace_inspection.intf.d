examples/trace_inspection.mli:
