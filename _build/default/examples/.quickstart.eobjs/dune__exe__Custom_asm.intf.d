examples/custom_asm.mli:
