examples/trace_inspection.ml: Array Filename Format List Resim_trace Resim_tracegen Resim_workloads Seq Sys Unix
