(* Bring-your-own program: write assembly as text, parse it, inspect its
   trace profile, then time it three ways (offline trace-driven,
   on-the-fly co-simulation, and across the three internal pipeline
   organizations).

     dune exec examples/custom_asm.exe *)

let source = {|
# Matrix-ish kernel: dot products of pseudo-random rows.
.entry main

main:
    li   s0, 0x2000        # vector A
    li   s1, 0x4000        # vector B
    li   t0, 0             # index
    li   t1, 64            # length
    li   t2, 7             # LCG state

fill:
    li   t3, 1103515245
    mul  t2, t2, t3
    addi t2, t2, 12345
    li   t3, 0x7fffffff
    and  t2, t2, t3
    li   t3, 16
    srl  t4, t2, t3
    andi t4, t4, 255
    sll  t5, t0, t3        # scaled offset (t3=16 still): too big; reuse
    li   t3, 2
    sll  t5, t0, t3
    add  t6, s0, t5
    sw   t4, 0(t6)
    add  t6, s1, t5
    sw   t4, 4(t6)
    addi t0, t0, 1
    blt  t0, t1, fill

    li   t0, 0
    li   v0, 0             # accumulator
dot:
    li   t3, 2
    sll  t5, t0, t3
    add  t6, s0, t5
    lw   t4, 0(t6)
    add  t6, s1, t5
    lw   t7, 4(t6)
    mul  t4, t4, t7
    add  v0, v0, t4
    addi t0, t0, 1
    blt  t0, t1, dot
    sw   v0, 0x6000(zero)
    halt
|}

let () =
  let program = Resim_isa.Parser.parse source in
  Format.printf "parsed %d instructions@.@."
    (Resim_isa.Program.length program);

  (* Trace profile before timing anything. *)
  let records = Resim_tracegen.Generator.records program in
  Format.printf "%a@.@." Resim_trace.Profile.pp_report records;

  (* Offline vs on-the-fly: identical timing, bounded memory. *)
  let offline = Resim_core.Resim.simulate_trace records in
  let cosim = Resim_core.Cosim.run program in
  Format.printf
    "offline: %Ld cycles; co-simulation: %Ld cycles (window %d records)@.@."
    (Resim_core.Stats.get Resim_core.Stats.major_cycles offline.stats)
    (Resim_core.Stats.get Resim_core.Stats.major_cycles cosim.stats)
    cosim.peak_buffered_records;

  (* The three internal organizations: same simulated cycles, different
     simulation speed. *)
  List.iter
    (fun organization ->
      let config = { Resim_core.Config.reference with organization } in
      let outcome = Resim_core.Resim.simulate_trace ~config records in
      Format.printf "%-10s L=%d  %Ld major cycles  %.2f MIPS on V5@."
        (Resim_core.Config.organization_name organization)
        (Resim_core.Config.minor_cycle_latency config)
        (Resim_core.Stats.get Resim_core.Stats.major_cycles outcome.stats)
        (Resim_core.Resim.mips outcome
           ~device:Resim_fpga.Device.virtex5_xc5vlx50t))
    [ Resim_core.Config.Simple; Resim_core.Config.Improved;
      Resim_core.Config.Optimized ]
