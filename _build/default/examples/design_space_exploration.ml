(* Design-space exploration: the workload ReSim exists for.

   One trace of the gzip-like kernel is generated once, then re-timed
   under a grid of processor configurations (ROB size x issue width x
   memory system). With FPGA-speed simulation each point of such a grid
   costs milliseconds of simulated wall-clock; here we also report what
   each configuration costs in FPGA area, the two axes an architect
   trades off.

     dune exec examples/design_space_exploration.exe *)

module Config = Resim_core.Config

let v5 = Resim_fpga.Device.virtex5_xc5vlx50t

let configuration ~width ~rob_entries ~perfect_memory =
  let dcache =
    if perfect_memory then Resim_cache.Cache.Perfect
    else Resim_cache.Cache.l1_32k_8way_64b
  in
  { Config.reference with
    width;
    ifq_entries = width;
    decouple_entries = width;
    alu_count = width;
    rob_entries;
    lsq_entries = max 4 (rob_entries / 2);
    mem_read_ports = max 1 (width / 2);
    organization = Config.Improved;
    icache = dcache;
    dcache }

let () =
  let gzip = Resim_workloads.Workload.find "gzip" in
  let program = Resim_workloads.Workload.program_of gzip ~scale:16384 () in
  let generated = Resim_tracegen.Generator.run program in
  Format.printf
    "gzip trace: %d records; re-timing it across 16 configurations@.@."
    (Array.length generated.records);
  Format.printf "%5s %5s %8s | %8s %10s %10s@." "width" "ROB" "memory"
    "IPC" "MIPS(V5)" "slices";
  List.iter
    (fun width ->
      List.iter
        (fun rob_entries ->
          List.iter
            (fun perfect_memory ->
              let config =
                configuration ~width ~rob_entries ~perfect_memory
              in
              let outcome =
                Resim_core.Resim.simulate_trace ~config generated.records
              in
              let area =
                Resim_fpga.Area.estimate
                  { Resim_fpga.Area.reference_params with
                    width;
                    ifq_entries = width;
                    decouple_entries = width;
                    rob_entries;
                    lsq_entries = config.lsq_entries;
                    with_dcache = not perfect_memory;
                    with_icache = not perfect_memory }
              in
              Format.printf "%5d %5d %8s | %8.3f %10.2f %10d@." width
                rob_entries
                (if perfect_memory then "perfect" else "32K L1")
                (Resim_core.Stats.ipc outcome.stats)
                (Resim_core.Resim.mips outcome ~device:v5)
                area.total_with_caches.slices)
            [ true; false ])
        [ 8; 16; 32; 64 ])
    [ 2; 4 ];
  Format.printf
    "@.Each row re-used the same trace: trace-driven timing turns a \
     design sweep@.into pure re-timing, the bulk-simulation use case of \
     §I.@."
