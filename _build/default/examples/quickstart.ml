(* Quickstart: assemble a tiny program, generate its trace, run the
   ReSim timing engine, and express the result as the paper does.

     dune exec examples/quickstart.exe *)

open Resim_isa

(* Sum an array of 64 words through a pointer walk, with a data-
   dependent branch so the predictor has something to do. *)
let program =
  Asm.(
    assemble
      [ li s0 0x1000;          (* array base *)
        li t0 0;               (* i *)
        li t1 0;               (* even sum *)
        li t2 0;               (* odd sum *)
        li s1 64;
        li s2 2;
        (* initialise the array: a[i] = 7i + 3 *)
        label "init";
        li t3 7;
        mul t3 t0 t3;
        addi t3 t3 3;
        sll t4 t0 s2;
        add t4 s0 t4;
        sw t3 0 t4;
        addi t0 t0 1;
        blt t0 s1 "init";
        (* sum with a parity-dependent branch *)
        li t0 0;
        label "sum";
        sll t4 t0 s2;
        add t4 s0 t4;
        lw t3 0 t4;
        andi t5 t3 1;
        beq t5 Reg.zero "even";
        add t2 t2 t3;
        j "next";
        label "even";
        add t1 t1 t3;
        label "next";
        addi t0 t0 1;
        blt t0 s1 "sum";
        halt ])

let () =
  (* 1. Trace generation: the sim-bpred analog runs the program and
     inserts tagged wrong-path blocks after mispredicted branches. *)
  let generated = Resim_tracegen.Generator.run program in
  Format.printf "trace: %d records (%d correct path, %d wrong path)@."
    (Array.length generated.records)
    generated.correct_path generated.wrong_path;

  (* 2. Timing simulation with the reference 4-wide processor. *)
  let outcome = Resim_core.Resim.simulate_trace generated.records in
  Format.printf "@.%a@." Resim_core.Resim.pp_outcome outcome;

  (* 3. The paper's metric: simulation speed at the FPGA's minor-cycle
     frequency. *)
  List.iter
    (fun device ->
      Format.printf "simulation speed on %s: %.2f MIPS@."
        device.Resim_fpga.Device.name
        (Resim_core.Resim.mips outcome ~device))
    Resim_fpga.Device.all
