(* Tests for the branch-predictor unit: saturating counters, direction
   predictors, BTB, RAS and the composed unit. *)

open Resim_bpred

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* --- saturating counters -------------------------------------------- *)

let test_counter_basics () =
  let c = Saturating.create () in
  check int "2-bit max" 3 (Saturating.max_value c);
  check bool "weakly taken initially" true (Saturating.predict_taken c);
  Saturating.train c ~taken:false;
  check bool "one down: not taken" false (Saturating.predict_taken c);
  Saturating.train c ~taken:false;
  Saturating.train c ~taken:false;
  check int "saturates at zero" 0 (Saturating.value c);
  Saturating.train c ~taken:true;
  Saturating.train c ~taken:true;
  check bool "back to taken" true (Saturating.predict_taken c);
  Saturating.train c ~taken:true;
  Saturating.train c ~taken:true;
  check int "saturates at max" 3 (Saturating.value c)

let test_counter_initial_clamped () =
  let c = Saturating.create ~initial:99 () in
  check int "clamped to max" 3 (Saturating.value c);
  let c = Saturating.create ~initial:(-5) () in
  check int "clamped to zero" 0 (Saturating.value c)

(* --- direction predictors ------------------------------------------- *)

let test_perfect () =
  let p = Direction.create Direction.Perfect in
  check bool "echoes actual true" true (Direction.predict p ~pc:1 ~actual:true);
  check bool "echoes actual false" false
    (Direction.predict p ~pc:1 ~actual:false)

let test_static () =
  let taken = Direction.create Direction.Static_taken in
  let not_taken = Direction.create Direction.Static_not_taken in
  check bool "static taken" true (Direction.predict taken ~pc:3 ~actual:false);
  check bool "static not-taken" false
    (Direction.predict not_taken ~pc:3 ~actual:true)

let test_bimodal_learns () =
  let p = Direction.create (Direction.Bimodal { table_entries = 64 }) in
  for _ = 1 to 4 do Direction.update p ~pc:10 ~taken:false done;
  check bool "learned not-taken" false
    (Direction.predict p ~pc:10 ~actual:true);
  for _ = 1 to 4 do Direction.update p ~pc:10 ~taken:true done;
  check bool "relearned taken" true (Direction.predict p ~pc:10 ~actual:false)

let test_two_level_learns_pattern () =
  (* A strictly alternating branch is invisible to a bimodal predictor
     but trivial for a two-level predictor with history. *)
  let p = Direction.create Direction.two_level_default in
  let outcome i = i mod 2 = 0 in
  for i = 1 to 200 do
    Direction.update p ~pc:5 ~taken:(outcome i)
  done;
  let correct = ref 0 in
  for i = 201 to 300 do
    if Direction.predict p ~pc:5 ~actual:(outcome i) = outcome i then
      incr correct;
    Direction.update p ~pc:5 ~taken:(outcome i)
  done;
  check bool "alternating pattern learned (>95%)" true (!correct > 95)

let test_gshare_learns () =
  let p =
    Direction.create (Direction.Gshare { history_bits = 8; pht_entries = 1024 })
  in
  let outcome i = i mod 3 = 0 in
  for i = 1 to 300 do Direction.update p ~pc:9 ~taken:(outcome i) done;
  let correct = ref 0 in
  for i = 301 to 400 do
    if Direction.predict p ~pc:9 ~actual:(outcome i) = outcome i then
      incr correct;
    Direction.update p ~pc:9 ~taken:(outcome i)
  done;
  check bool "period-3 pattern learned (>90%)" true (!correct > 90)

let test_two_level_tiny_pht () =
  (* A PHT smaller than the history span still indexes safely. *)
  let p =
    Direction.create
      (Direction.Two_level
         { bht_entries = 2; history_bits = 8; pht_entries = 16 })
  in
  for i = 1 to 200 do
    ignore (Direction.predict p ~pc:i ~actual:(i mod 2 = 0));
    Direction.update p ~pc:i ~taken:(i mod 2 = 0)
  done;
  check bool "no crash, sane output" true
    (Direction.predict p ~pc:7 ~actual:true = true
    || Direction.predict p ~pc:7 ~actual:true = false)

let test_snapshot_independence () =
  let p = Direction.create (Direction.Bimodal { table_entries = 16 }) in
  for _ = 1 to 4 do Direction.update p ~pc:2 ~taken:true done;
  let copy = Direction.snapshot p in
  for _ = 1 to 8 do Direction.update p ~pc:2 ~taken:false done;
  check bool "original retrained" false
    (Direction.predict p ~pc:2 ~actual:true);
  check bool "snapshot unaffected" true
    (Direction.predict copy ~pc:2 ~actual:false)

let test_direction_validation () =
  Alcotest.check_raises "zero entries"
    (Invalid_argument "Direction.create: table_entries must be positive")
    (fun () ->
      ignore (Direction.create (Direction.Bimodal { table_entries = 0 })))

(* --- BTB ------------------------------------------------------------- *)

let test_btb_miss_then_hit () =
  let btb = Btb.create Btb.default_config in
  check bool "cold miss" true (Btb.lookup btb ~pc:100 = None);
  Btb.update btb ~pc:100 ~target:7;
  check bool "hit after update" true (Btb.lookup btb ~pc:100 = Some 7);
  Btb.update btb ~pc:100 ~target:9;
  check bool "target refreshed" true (Btb.lookup btb ~pc:100 = Some 9);
  check int "one entry used" 1 (Btb.entries_used btb)

let test_btb_direct_mapped_conflict () =
  let btb = Btb.create { Btb.entries = 16; associativity = 1 } in
  Btb.update btb ~pc:3 ~target:30;
  Btb.update btb ~pc:19 ~target:190;
  check bool "conflicting entry evicted" true (Btb.lookup btb ~pc:3 = None);
  check bool "new entry present" true (Btb.lookup btb ~pc:19 = Some 190)

let test_btb_associative_retains () =
  let btb = Btb.create { Btb.entries = 16; associativity = 2 } in
  (* pcs 3 and 11 share set 3 of 8 sets. *)
  Btb.update btb ~pc:3 ~target:30;
  Btb.update btb ~pc:11 ~target:110;
  check bool "way 1 retained" true (Btb.lookup btb ~pc:3 = Some 30);
  check bool "way 2 retained" true (Btb.lookup btb ~pc:11 = Some 110);
  (* A third conflicting pc evicts the least recently used (pc 3 was
     touched by the lookup above, then 11; so 3 is older). *)
  Btb.update btb ~pc:19 ~target:190;
  check bool "LRU way evicted" true (Btb.lookup btb ~pc:3 = None);
  check bool "MRU way kept" true (Btb.lookup btb ~pc:11 = Some 110)

let test_btb_validation () =
  Alcotest.check_raises "assoc divides entries"
    (Invalid_argument "Btb.create: associativity must divide entries")
    (fun () -> ignore (Btb.create { Btb.entries = 10; associativity = 4 }))

(* --- RAS -------------------------------------------------------------- *)

let test_ras_lifo () =
  let ras = Ras.create 4 in
  check bool "empty pop" true (Ras.pop ras = None);
  Ras.push ras 10;
  Ras.push ras 20;
  check int "occupancy" 2 (Ras.occupancy ras);
  check bool "pop 20" true (Ras.pop ras = Some 20);
  check bool "pop 10" true (Ras.pop ras = Some 10);
  check bool "empty again" true (Ras.pop ras = None)

let test_ras_overflow_wraps () =
  let ras = Ras.create 2 in
  Ras.push ras 1;
  Ras.push ras 2;
  Ras.push ras 3;
  check int "occupancy capped" 2 (Ras.occupancy ras);
  check bool "newest first" true (Ras.pop ras = Some 3);
  check bool "then second" true (Ras.pop ras = Some 2);
  check bool "oldest lost" true (Ras.pop ras = None)

let test_ras_snapshot_restore () =
  let ras = Ras.create 4 in
  Ras.push ras 5;
  Ras.push ras 6;
  let saved = Ras.snapshot ras in
  ignore (Ras.pop ras);
  Ras.push ras 99;
  Ras.push ras 98;
  Ras.restore ras saved;
  check bool "restored top" true (Ras.pop ras = Some 6);
  check bool "restored next" true (Ras.pop ras = Some 5)

let test_ras_restore_mismatch () =
  let ras = Ras.create 4 in
  let other = Ras.create 8 in
  Alcotest.check_raises "depth mismatch"
    (Invalid_argument "Ras.restore: depth mismatch") (fun () ->
      Ras.restore ras (Ras.snapshot other))

let test_ras_invalid_depth () =
  Alcotest.check_raises "zero depth"
    (Invalid_argument "Ras.create: depth must be positive") (fun () ->
      ignore (Ras.create 0))

(* --- composed predictor unit ------------------------------------------ *)

let test_unit_oracle () =
  let p = Predictor.create Predictor.perfect_config in
  let prediction =
    Predictor.predict p ~pc:4 ~kind:Resim_isa.Opcode.Cond ~fallthrough:5
      ~actual_taken:true ~actual_target:42
  in
  check bool "oracle direction" true prediction.taken;
  check bool "oracle target" true (prediction.target = Some 42);
  let prediction =
    Predictor.predict p ~pc:4 ~kind:Resim_isa.Opcode.Cond ~fallthrough:5
      ~actual_taken:false ~actual_target:42
  in
  check bool "oracle not-taken" false prediction.taken

let test_unit_cond_not_taken_has_no_target () =
  let p =
    Predictor.create
      { Predictor.default_config with
        direction = Direction.Static_not_taken }
  in
  let prediction =
    Predictor.predict p ~pc:4 ~kind:Resim_isa.Opcode.Cond ~fallthrough:5
      ~actual_taken:true ~actual_target:42
  in
  check bool "not taken" false prediction.taken;
  check bool "no target" true (prediction.target = None)

let test_unit_call_return_pair () =
  let p = Predictor.create Predictor.default_config in
  (* A call from pc 10 pushes its fall-through (11). *)
  ignore
    (Predictor.predict p ~pc:10 ~kind:Resim_isa.Opcode.Call ~fallthrough:11
       ~actual_taken:true ~actual_target:50);
  let ret =
    Predictor.predict p ~pc:60 ~kind:Resim_isa.Opcode.Ret ~fallthrough:61
      ~actual_taken:true ~actual_target:11
  in
  check bool "return target from RAS" true (ret.target = Some 11);
  check bool "came from RAS" true ret.from_ras

let test_unit_btb_training () =
  let p = Predictor.create Predictor.default_config in
  let before =
    Predictor.predict p ~pc:7 ~kind:Resim_isa.Opcode.Jump ~fallthrough:8
      ~actual_taken:true ~actual_target:70
  in
  check bool "cold jump has no target" true (before.target = None);
  Predictor.update p ~pc:7 ~kind:Resim_isa.Opcode.Jump ~taken:true ~target:70;
  let after =
    Predictor.predict p ~pc:7 ~kind:Resim_isa.Opcode.Jump ~fallthrough:8
      ~actual_taken:true ~actual_target:70
  in
  check bool "trained target" true (after.target = Some 70)

let test_unit_ras_repair () =
  let p = Predictor.create Predictor.default_config in
  ignore
    (Predictor.predict p ~pc:1 ~kind:Resim_isa.Opcode.Call ~fallthrough:2
       ~actual_taken:true ~actual_target:10);
  let saved = Predictor.ras_snapshot p in
  (* Wrong-path call pollutes the RAS ... *)
  ignore
    (Predictor.predict p ~pc:20 ~kind:Resim_isa.Opcode.Call ~fallthrough:21
       ~actual_taken:true ~actual_target:30);
  Predictor.ras_restore p saved;
  (* ... but after repair the return still sees the first call. *)
  let ret =
    Predictor.predict p ~pc:15 ~kind:Resim_isa.Opcode.Ret ~fallthrough:16
      ~actual_taken:true ~actual_target:2
  in
  check bool "repaired return target" true (ret.target = Some 2)

let test_unit_accuracy_accounting () =
  let p = Predictor.create Predictor.default_config in
  ignore
    (Predictor.predict p ~pc:1 ~kind:Resim_isa.Opcode.Cond ~fallthrough:2
       ~actual_taken:true ~actual_target:5);
  Predictor.record_resolution p ~correct:true;
  Predictor.record_resolution p ~correct:false;
  check int "predictions counted" 1 (Predictor.predictions_made p);
  check int "hits counted" 1 (Predictor.direction_hits p)

(* --- properties -------------------------------------------------------- *)

let btb_lookup_after_update =
  QCheck.Test.make ~name:"btb: lookup after update returns the target"
    ~count:100
    QCheck.(pair (int_bound 10_000) (int_bound 10_000))
    (fun (pc, target) ->
      let btb = Btb.create Btb.default_config in
      Btb.update btb ~pc ~target;
      Btb.lookup btb ~pc = Some target)

let ras_push_pop_identity =
  QCheck.Test.make ~name:"ras: pushes pop back in reverse order (within depth)"
    ~count:100
    QCheck.(list_of_size (Gen.int_range 1 16) (int_bound 100_000))
    (fun addresses ->
      let depth = 16 in
      let ras = Ras.create depth in
      List.iter (Ras.push ras) addresses;
      let rec drain acc =
        match Ras.pop ras with
        | Some a -> drain (a :: acc)
        | None -> acc
      in
      let drained = drain [] in
      (* The last [depth] pushes come back, oldest-first after the
         accumulation above. *)
      let expected =
        let n = List.length addresses in
        if n <= depth then addresses
        else List.filteri (fun i _ -> i >= n - depth) addresses
      in
      drained = expected)

let suite =
  [ ("bpred:saturating",
     [ Alcotest.test_case "basics" `Quick test_counter_basics;
       Alcotest.test_case "initial clamp" `Quick test_counter_initial_clamped
     ]);
    ("bpred:direction",
     [ Alcotest.test_case "perfect" `Quick test_perfect;
       Alcotest.test_case "static" `Quick test_static;
       Alcotest.test_case "bimodal learns" `Quick test_bimodal_learns;
       Alcotest.test_case "two-level learns alternation" `Quick
         test_two_level_learns_pattern;
       Alcotest.test_case "gshare learns period-3" `Quick test_gshare_learns;
       Alcotest.test_case "tiny PHT" `Quick test_two_level_tiny_pht;
       Alcotest.test_case "snapshot independence" `Quick
         test_snapshot_independence;
       Alcotest.test_case "validation" `Quick test_direction_validation ]);
    ("bpred:btb",
     [ Alcotest.test_case "miss then hit" `Quick test_btb_miss_then_hit;
       Alcotest.test_case "direct-mapped conflict" `Quick
         test_btb_direct_mapped_conflict;
       Alcotest.test_case "associative retention + LRU" `Quick
         test_btb_associative_retains;
       Alcotest.test_case "validation" `Quick test_btb_validation ]);
    ("bpred:ras",
     [ Alcotest.test_case "LIFO" `Quick test_ras_lifo;
       Alcotest.test_case "overflow wraps" `Quick test_ras_overflow_wraps;
       Alcotest.test_case "snapshot/restore" `Quick test_ras_snapshot_restore;
       Alcotest.test_case "restore mismatch" `Quick test_ras_restore_mismatch;
       Alcotest.test_case "invalid depth" `Quick test_ras_invalid_depth ]);
    ("bpred:unit",
     [ Alcotest.test_case "oracle" `Quick test_unit_oracle;
       Alcotest.test_case "cond not-taken" `Quick
         test_unit_cond_not_taken_has_no_target;
       Alcotest.test_case "call/return RAS" `Quick test_unit_call_return_pair;
       Alcotest.test_case "BTB training" `Quick test_unit_btb_training;
       Alcotest.test_case "RAS repair" `Quick test_unit_ras_repair;
       Alcotest.test_case "accuracy accounting" `Quick
         test_unit_accuracy_accounting ]);
    ("bpred:properties",
     [ QCheck_alcotest.to_alcotest btb_lookup_after_update;
       QCheck_alcotest.to_alcotest ras_push_pop_identity ]) ]
