(* Tests for the five SPEC-like kernels and the public workload API. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let test_registry () =
  check int "five kernels" 5 (List.length Resim_workloads.Workload.all);
  check bool "paper order" true
    (Resim_workloads.Workload.names
    = [ "gzip"; "bzip2"; "parser"; "vortex"; "vpr" ]);
  check bool "find works" true
    (Resim_workloads.Workload.name_of
       (Resim_workloads.Workload.find "parser")
    = "parser");
  Alcotest.check_raises "unknown kernel" Not_found (fun () ->
      ignore (Resim_workloads.Workload.find "nonesuch"))

let small_scale name =
  (* Scales chosen so each kernel runs in well under a second. *)
  match name with "vpr" -> 1 | _ -> 512

let test_extended_kernels () =
  check int "two extended kernels" 2
    (List.length Resim_workloads.Workload.extended);
  List.iter
    (fun workload ->
      let name = Resim_workloads.Workload.name_of workload in
      let program =
        Resim_workloads.Workload.program_of workload ~scale:512 ()
      in
      let machine = Resim_isa.Machine.create ~program () in
      let executed =
        Resim_isa.Interpreter.run ~max_steps:2_000_000 machine program
      in
      check bool (name ^ " halts") true (Resim_isa.Machine.halted machine);
      check bool (name ^ " does real work") true (executed > 1000);
      let outcome = Resim_core.Resim.simulate_program program in
      let ipc = Resim_core.Stats.ipc outcome.stats in
      check bool (name ^ " plausible IPC") true (ipc > 0.5 && ipc < 4.0))
    Resim_workloads.Workload.extended

let test_kernels_terminate () =
  List.iter
    (fun workload ->
      let name = Resim_workloads.Workload.name_of workload in
      let program =
        Resim_workloads.Workload.program_of workload
          ~scale:(small_scale name) ()
      in
      let machine = Resim_isa.Machine.create ~program () in
      let executed =
        Resim_isa.Interpreter.run ~max_steps:2_000_000 machine program
      in
      check bool (name ^ " halts") true (Resim_isa.Machine.halted machine);
      check bool (name ^ " does real work") true (executed > 1000))
    Resim_workloads.Workload.all

let test_kernels_simulate_end_to_end () =
  List.iter
    (fun workload ->
      let name = Resim_workloads.Workload.name_of workload in
      let program =
        Resim_workloads.Workload.program_of workload
          ~scale:(small_scale name) ()
      in
      let outcome = Resim_core.Resim.simulate_program program in
      let ipc = Resim_core.Stats.ipc outcome.stats in
      check bool (name ^ " has plausible IPC") true (ipc > 0.5 && ipc < 4.0))
    Resim_workloads.Workload.all

let test_kernel_character () =
  (* The kernels must keep their calibrated relative character at small
     scale: the bzip2 stand-in out-runs the parser stand-in (streaming
     vs pointer chasing), as in Table 1. *)
  let ipc_of name scale =
    let workload = Resim_workloads.Workload.find name in
    let program = Resim_workloads.Workload.program_of workload ~scale () in
    Resim_core.Stats.ipc (Resim_core.Resim.simulate_program program).stats
  in
  let bzip2 = ipc_of "bzip2" 4096 in
  let parser = ipc_of "parser" 4096 in
  check bool "bzip2 faster than parser (perfect memory)" true
    (bzip2 > parser)

let test_profiles_are_sane () =
  List.iter
    (fun workload ->
      let profile =
        Resim_workloads.Workload.profile_of workload ~instructions:1000
      in
      let open Resim_tracegen.Synthetic in
      let total =
        profile.loads +. profile.stores +. profile.branches +. profile.calls
        +. profile.mults +. profile.divides
      in
      check bool (profile.name ^ " fractions below 1") true (total < 1.0);
      check bool (profile.name ^ " rates in range") true
        (profile.mispredict_rate >= 0.0 && profile.mispredict_rate <= 1.0
        && profile.taken_rate >= 0.0 && profile.taken_rate <= 1.0);
      check bool (profile.name ^ " working set positive") true
        (profile.working_set_bytes > 0))
    Resim_workloads.Workload.all

let test_deterministic_programs () =
  let build () =
    let w = Resim_workloads.Workload.find "vortex" in
    let program = Resim_workloads.Workload.program_of w ~scale:256 () in
    Resim_tracegen.Generator.records program
  in
  let a = build () and b = build () in
  check bool "kernel traces deterministic" true
    (Array.for_all2 Resim_trace.Record.equal a b)

let suite =
  [ ("workloads",
     [ Alcotest.test_case "registry" `Quick test_registry;
       Alcotest.test_case "termination" `Quick test_kernels_terminate;
       Alcotest.test_case "end-to-end" `Slow test_kernels_simulate_end_to_end;
       Alcotest.test_case "relative character" `Slow test_kernel_character;
       Alcotest.test_case "profiles" `Quick test_profiles_are_sane;
       Alcotest.test_case "determinism" `Quick test_deterministic_programs;
       Alcotest.test_case "extended kernels" `Quick test_extended_kernels ])
  ]
