test/test_isa.ml: Alcotest Asm Fun Gen Instruction Int64 Interpreter List Machine Opcode Printf Program QCheck QCheck_alcotest Reg Resim_isa String
