test/test_tracegen.ml: Alcotest Array Int64 QCheck QCheck_alcotest Resim_bpred Resim_core Resim_isa Resim_trace Resim_tracegen
