test/test_baseline.ml: Alcotest Array Int64 Resim_baseline Resim_core Resim_isa Resim_trace Resim_tracegen Resim_workloads
