test/test_extensions.ml: Alcotest Array Int64 List QCheck QCheck_alcotest Resim_cache Resim_core Resim_fpga Resim_isa Resim_multicore Resim_trace Resim_tracegen Resim_workloads
