test/test_workloads.ml: Alcotest Array List Resim_core Resim_isa Resim_trace Resim_tracegen Resim_workloads
