test/test_cache.ml: Alcotest Array Cache Gen Int64 List QCheck QCheck_alcotest Resim_cache
