test/test_fpga.ml: Alcotest Area Device Frequency List QCheck QCheck_alcotest Resim_fpga Throughput
