test/test_tools.ml: Alcotest Array Filename Fun Int64 List Resim_bpred Resim_core Resim_isa Resim_trace Resim_vhdlgen String Sys Unix
