test/test_bpred.ml: Alcotest Btb Direction Gen List Predictor QCheck QCheck_alcotest Ras Resim_bpred Resim_isa Saturating
