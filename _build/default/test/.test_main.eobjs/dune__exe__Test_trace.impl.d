test/test_trace.ml: Alcotest Array Bitio Codec Filename Fun Gen List Printf Profile QCheck QCheck_alcotest Record Resim_isa Resim_trace String Summary Sys
