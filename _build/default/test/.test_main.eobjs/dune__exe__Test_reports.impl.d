test/test_reports.ml: Alcotest Filename Format Fun List Resim_core Resim_reports Resim_workloads String Sys
