test/test_consistency.ml: Alcotest Int64 List QCheck QCheck_alcotest Resim_baseline Resim_cache Resim_core Resim_tracegen Resim_workloads String
