(* Tests for the execution-driven and in-order baselines, plus the
   agreement between the fused baseline and trace-driven ReSim. *)

module Record = Resim_trace.Record

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let i64 = Alcotest.int64

let gzip_program () =
  let gzip = Resim_workloads.Workload.find "gzip" in
  Resim_workloads.Workload.program_of gzip ~scale:1024 ()

let test_fused_agrees_with_trace_driven () =
  (* The fused execution-driven baseline must produce the same simulated
     timing as generating the trace first and timing it separately —
     same functional model, same timing model. *)
  let program = gzip_program () in
  let fused = Resim_baseline.Sim_outorder.run program in
  let config = Resim_core.Config.reference in
  let generator =
    { Resim_tracegen.Generator.predictor = config.predictor;
      wrong_path_limit = config.rob_entries + config.ifq_entries;
      max_instructions = 20_000_000 }
  in
  let records = Resim_tracegen.Generator.records ~config:generator program in
  let separate = Resim_core.Resim.simulate_trace ~config records in
  check i64 "same committed"
    (Resim_core.Stats.get Resim_core.Stats.committed fused.outcome.stats)
    (Resim_core.Stats.get Resim_core.Stats.committed separate.stats);
  check i64 "same major cycles"
    (Resim_core.Stats.get Resim_core.Stats.major_cycles fused.outcome.stats)
    (Resim_core.Stats.get Resim_core.Stats.major_cycles separate.stats)

let test_functional_only_matches_interpreter () =
  let program = gzip_program () in
  let via_baseline = Resim_baseline.Sim_outorder.functional_only program in
  let machine = Resim_isa.Machine.create ~program () in
  let via_interpreter = Resim_isa.Interpreter.run machine program in
  check int "same instruction count" via_interpreter via_baseline

let test_fused_counts_wrong_path_work () =
  let program = gzip_program () in
  let fused = Resim_baseline.Sim_outorder.run program in
  let committed =
    Int64.to_int
      (Resim_core.Stats.get Resim_core.Stats.committed fused.outcome.stats)
  in
  check bool "functional work >= committed" true
    (fused.functional_instructions >= committed)

(* --- in-order ------------------------------------------------------- *)

let alu ~pc ~dest ~src1 =
  { Record.pc; wrong_path = false; dest; src1; src2 = 0;
    payload = Record.Other { op_class = Record.Alu } }

let test_in_order_ipc_at_most_one () =
  let records = Array.init 200 (fun i -> alu ~pc:i ~dest:1 ~src1:2) in
  let result = Resim_baseline.In_order.simulate records in
  check bool "scalar pipeline" true (result.ipc <= 1.0);
  check i64 "all instructions" 200L result.instructions

let test_in_order_load_use_stall () =
  let without =
    [| alu ~pc:0 ~dest:1 ~src1:2; alu ~pc:1 ~dest:3 ~src1:4 |]
  in
  let with_hazard =
    [| { Record.pc = 0; wrong_path = false; dest = 1; src1 = 2; src2 = 0;
         payload = Record.Memory { is_load = true; address = 64 } };
       alu ~pc:1 ~dest:3 ~src1:1 |]
  in
  let base = (Resim_baseline.In_order.simulate without).cycles in
  let stalled = (Resim_baseline.In_order.simulate with_hazard).cycles in
  check bool "load-use hazard costs a cycle" true
    (Int64.compare stalled base > 0)

let test_in_order_long_latency_ops () =
  let divides =
    Array.init 10 (fun i ->
        { Record.pc = i; wrong_path = false; dest = 1; src1 = 2; src2 = 0;
          payload = Record.Other { op_class = Record.Divide } })
  in
  let result = Resim_baseline.In_order.simulate divides in
  (* 1 + 9 stall cycles per divide. *)
  check i64 "divide stalls" 100L result.cycles

let test_in_order_wrong_path_penalty_once_per_block () =
  let records =
    [| alu ~pc:0 ~dest:1 ~src1:2;
       { (alu ~pc:10 ~dest:1 ~src1:2) with Record.wrong_path = true };
       { (alu ~pc:11 ~dest:1 ~src1:2) with Record.wrong_path = true };
       alu ~pc:1 ~dest:3 ~src1:4 |]
  in
  let result = Resim_baseline.In_order.simulate records in
  check i64 "two timed instructions" 2L result.instructions;
  (* 2 instruction cycles + one 3-cycle block penalty. *)
  check i64 "penalty once" 5L result.cycles

let test_in_order_ooo_speedup_on_ilp () =
  (* Independent work: the 4-wide OoO core must beat the scalar
     pipeline clearly. *)
  let records =
    Array.init 400 (fun i -> alu ~pc:i ~dest:(1 + (i mod 28)) ~src1:30)
  in
  let in_order = (Resim_baseline.In_order.simulate records).ipc in
  let ooo =
    Resim_core.Stats.ipc (Resim_core.Engine.simulate records)
  in
  check bool "OoO exploits ILP" true (ooo > 2.0 *. in_order)

let suite =
  [ ("baseline:sim-outorder",
     [ Alcotest.test_case "fused = trace-driven" `Slow
         test_fused_agrees_with_trace_driven;
       Alcotest.test_case "functional-only" `Quick
         test_functional_only_matches_interpreter;
       Alcotest.test_case "wrong-path work counted" `Quick
         test_fused_counts_wrong_path_work ]);
    ("baseline:in-order",
     [ Alcotest.test_case "scalar IPC bound" `Quick
         test_in_order_ipc_at_most_one;
       Alcotest.test_case "load-use stall" `Quick test_in_order_load_use_stall;
       Alcotest.test_case "long-latency stalls" `Quick
         test_in_order_long_latency_ops;
       Alcotest.test_case "wrong-path penalty" `Quick
         test_in_order_wrong_path_penalty_once_per_block;
       Alcotest.test_case "OoO speedup" `Quick
         test_in_order_ooo_speedup_on_ilp ]) ]
