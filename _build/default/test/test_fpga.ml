(* Tests for the FPGA device, area, frequency and throughput models. *)

open Resim_fpga

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let close ?(eps = 1e-6) name expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %f, got %f" name expected actual

let test_devices () =
  check bool "v4 at 84MHz" true
    (Device.virtex4_xc4vlx40.minor_cycle_mhz = 84.0);
  check bool "v5 at 105MHz" true
    (Device.virtex5_xc5vlx50t.minor_cycle_mhz = 105.0);
  check int "three devices" 3 (List.length Device.all)

let test_area_reference_matches_table4 () =
  let report = Area.estimate Area.reference_params in
  (* Published totals (excluding caches): 12 273 slices, 17 175 LUTs,
     7 BRAMs. The model is calibrated to reproduce them to rounding. *)
  check bool "slices close" true (abs (report.total.slices - 12273) <= 5);
  check bool "luts close" true (abs (report.total.luts - 17175) <= 5);
  (* The published BRAM total of 7 spans the predictor (5) and the
     I-cache tags (2); the slice/LUT totals exclude the caches. *)
  check int "predictor brams" 5 report.total.brams;
  check int "brams incl caches" 7 report.total_with_caches.brams

let test_area_percentages_match_paper () =
  let report = Area.estimate Area.reference_params in
  let expect =
    [ (Area.Fetch_stage, 25.0); (Area.Dispatch_stage, 9.0);
      (Area.Issue_stage, 5.0); (Area.Lsq_stage, 14.0);
      (Area.Writeback_stage, 3.0); (Area.Commit_stage, 2.0);
      (Area.Rename_table, 3.0); (Area.Reorder_buffer, 13.0);
      (Area.Lsq_structure, 6.0); (Area.Branch_predictor, 2.0);
      (Area.Dcache, 17.0); (Area.Icache, 1.0) ]
  in
  List.iter
    (fun (structure, paper_pct) ->
      let ours = Area.percentage report structure in
      if abs_float (ours -. paper_pct) > 0.6 then
        Alcotest.failf "%s: %.2f%% vs paper %.1f%%"
          (Area.structure_name structure)
          ours paper_pct)
    expect

let test_area_scaling_monotone () =
  let base = Area.estimate Area.reference_params in
  let bigger_rob =
    Area.estimate { Area.reference_params with rob_entries = 64 }
  in
  let wider =
    Area.estimate { Area.reference_params with width = 8; ifq_entries = 8 }
  in
  check bool "bigger ROB costs more" true
    (bigger_rob.total.slices > base.total.slices);
  check bool "wider costs more" true (wider.total.slices > base.total.slices);
  let no_caches =
    Area.estimate
      { Area.reference_params with with_icache = false; with_dcache = false }
  in
  check bool "cacheless totals equal" true
    (no_caches.total.slices = base.total.slices);
  check bool "cacheless with-cache total smaller" true
    (no_caches.total_with_caches.slices < base.total_with_caches.slices)

let test_area_fits_devices () =
  let report = Area.estimate Area.reference_params in
  check bool "fits the V4 part" true (Area.fits report Device.virtex4_xc4vlx40);
  check bool "utilisation sensible" true
    (Area.utilisation report Device.virtex4_xc4vlx40 < 1.0);
  check bool "large V5 fits several" true
    (Area.instances_fitting report Device.virtex5_xc5vlx330t >= 8)

let test_frequency_model () =
  let v5 = Device.virtex5_xc5vlx50t in
  close "serial is base" 105.0 (Frequency.minor_cycle_mhz v5 Serial);
  (* The paper's datum: a parallel 4-wide unit is 22% slower. *)
  close "parallel 4-wide" (105.0 *. 0.78)
    (Frequency.minor_cycle_mhz v5 (Parallel { width = 4 }));
  close "parallel 1-wide is serial" 105.0
    (Frequency.minor_cycle_mhz v5 (Parallel { width = 1 }));
  close "area multiplier" 4.0 (Frequency.area_multiplier (Parallel { width = 4 }));
  close "serial area" 1.0 (Frequency.area_multiplier Serial)

let test_throughput_model () =
  (* 105 MHz, L = 7: 15 M simulated cycles/s; IPC 2 -> 30 MIPS. *)
  close "mips" 30.0
    (Throughput.mips ~mhz:105.0 ~minor_cycles_per_major:7
       ~instructions:2000L ~major_cycles:1000L);
  close "zero cycles" 0.0
    (Throughput.mips ~mhz:105.0 ~minor_cycles_per_major:7 ~instructions:5L
       ~major_cycles:0L);
  (* 25.44 MIPS at 43.44 bits/instr: the paper's ~138 MB/s row. *)
  close ~eps:0.01 "trace bandwidth"
    (25.44 *. 43.44 /. 8.0)
    (Throughput.trace_mbytes_per_second ~mips:25.44
       ~bits_per_instruction:43.44);
  close "speedup" 5.0 (Throughput.speedup ~ours:25.0 ~theirs:5.0)

let area_never_negative =
  QCheck.Test.make ~name:"area model yields non-negative costs" ~count:100
    QCheck.(
      quad (int_range 1 16) (int_range 1 128) (int_range 1 64)
        (int_range 1 64))
    (fun (width, rob, lsq, ifq) ->
      let report =
        Area.estimate
          { Area.reference_params with
            width;
            rob_entries = rob;
            lsq_entries = lsq;
            ifq_entries = ifq;
            decouple_entries = ifq }
      in
      List.for_all
        (fun (_, (c : Area.cost)) ->
          c.slices >= 0 && c.luts >= 0 && c.brams >= 0)
        report.per_structure
      && report.total_with_caches.slices >= report.total.slices)

let suite =
  [ ("fpga:device",
     [ Alcotest.test_case "catalogue" `Quick test_devices ]);
    ("fpga:area",
     [ Alcotest.test_case "reference totals (Table 4)" `Quick
         test_area_reference_matches_table4;
       Alcotest.test_case "percentages (Table 4)" `Quick
         test_area_percentages_match_paper;
       Alcotest.test_case "scaling" `Quick test_area_scaling_monotone;
       Alcotest.test_case "device fit" `Quick test_area_fits_devices;
       QCheck_alcotest.to_alcotest area_never_negative ]);
    ("fpga:frequency",
     [ Alcotest.test_case "serial vs parallel" `Quick test_frequency_model ]);
    ("fpga:throughput",
     [ Alcotest.test_case "formulas" `Quick test_throughput_model ]) ]
