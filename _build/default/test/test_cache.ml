(* Tests for the hit/miss + latency cache model. *)

open Resim_cache

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let small_config =
  (* 4 sets x 2 ways x 64-byte blocks = 512 bytes. *)
  Cache.Set_associative
    { Cache.size_bytes = 512; associativity = 2; block_bytes = 64 }

let test_perfect_always_hits () =
  let c = Cache.create Cache.Perfect in
  for i = 0 to 99 do
    check int "hit latency" (Cache.default_timing).hit_latency
      (Cache.access c ~addr:(i * 8192) ~write:false)
  done;
  let stats = Cache.stats c in
  check bool "no misses" true (Int64.equal stats.misses 0L);
  check bool "all hits" true (Int64.equal stats.hits 100L)

let test_miss_then_hit () =
  let c = Cache.create small_config in
  let miss = Cache.access c ~addr:0x1000 ~write:false in
  let hit = Cache.access c ~addr:0x1004 ~write:false in
  check int "miss latency" (1 + 18) miss;
  check int "hit latency" 1 hit;
  let stats = Cache.stats c in
  check bool "one miss one hit" true
    (Int64.equal stats.misses 1L && Int64.equal stats.hits 1L)

let test_custom_timing () =
  let timing = { Cache.hit_latency = 2; miss_latency = 40 } in
  let c = Cache.create ~timing small_config in
  check int "custom miss" 42 (Cache.access c ~addr:0 ~write:false);
  check int "custom hit" 2 (Cache.access c ~addr:0 ~write:false)

let test_lru_eviction () =
  let c = Cache.create small_config in
  (* Three blocks mapping to the same set (set stride = 4 sets x 64 B =
     256 B). *)
  let a = 0x0 and b = 0x100 and d = 0x200 in
  ignore (Cache.access c ~addr:a ~write:false);
  ignore (Cache.access c ~addr:b ~write:false);
  ignore (Cache.access c ~addr:a ~write:false);  (* a becomes MRU *)
  ignore (Cache.access c ~addr:d ~write:false);  (* evicts b (LRU) *)
  check bool "a still cached" true (Cache.probe c ~addr:a);
  check bool "b evicted" false (Cache.probe c ~addr:b);
  check bool "d cached" true (Cache.probe c ~addr:d)

let test_probe_is_pure () =
  let c = Cache.create small_config in
  ignore (Cache.access c ~addr:0 ~write:false);
  let before = Cache.stats c in
  ignore (Cache.probe c ~addr:0);
  ignore (Cache.probe c ~addr:0x4000);
  let after = Cache.stats c in
  check bool "probe changes nothing" true (before = after)

let test_capacity_fits () =
  (* Sequentially touching exactly the capacity leaves everything
     resident: re-touching gives pure hits. *)
  let c = Cache.create Cache.l1_32k_8way_64b in
  for block = 0 to (32 * 1024 / 64) - 1 do
    ignore (Cache.access c ~addr:(block * 64) ~write:false)
  done;
  Cache.reset_stats c;
  for block = 0 to (32 * 1024 / 64) - 1 do
    ignore (Cache.access c ~addr:(block * 64) ~write:false)
  done;
  check bool "fits capacity" true (Int64.equal (Cache.stats c).misses 0L)

let test_thrash_misses () =
  (* A working set twice the capacity with sequential sweeps misses on
     every block revisit. *)
  let c = Cache.create Cache.l1_32k_8way_64b in
  for _ = 1 to 2 do
    for block = 0 to (64 * 1024 / 64) - 1 do
      ignore (Cache.access c ~addr:(block * 64) ~write:false)
    done
  done;
  check bool "thrashing" true (Cache.miss_rate c > 0.99)

let test_validation () =
  Alcotest.check_raises "block size power of two"
    (Invalid_argument "Cache.create: block_bytes must be a power of two")
    (fun () ->
      ignore
        (Cache.create
           (Cache.Set_associative
              { Cache.size_bytes = 1024; associativity = 2; block_bytes = 48 })));
  Alcotest.check_raises "zero associativity"
    (Invalid_argument "Cache.create: associativity must be positive")
    (fun () ->
      ignore
        (Cache.create
           (Cache.Set_associative
              { Cache.size_bytes = 1024; associativity = 0; block_bytes = 64 })))

let test_write_accesses_counted () =
  let c = Cache.create small_config in
  ignore (Cache.access c ~addr:0 ~write:true);
  ignore (Cache.access c ~addr:0 ~write:true);
  let stats = Cache.stats c in
  check bool "writes counted" true (Int64.equal stats.accesses 2L);
  check bool "write allocates" true (Cache.probe c ~addr:0)

let test_reset_stats () =
  let c = Cache.create small_config in
  ignore (Cache.access c ~addr:0 ~write:false);
  Cache.reset_stats c;
  let stats = Cache.stats c in
  check bool "cleared" true
    (Int64.equal stats.accesses 0L && Int64.equal stats.misses 0L)

(* Reference model: a naive set-associative LRU cache built on lists. *)
module Reference = struct
  type t = {
    mutable sets : int list array;  (* MRU first *)
    assoc : int;
    block_bits : int;
  }

  let create ~sets ~assoc ~block_bits =
    { sets = Array.make sets []; assoc; block_bits }

  let access t addr =
    let block = addr lsr t.block_bits in
    let index = block mod Array.length t.sets in
    let set = t.sets.(index) in
    let hit = List.mem block set in
    let without = List.filter (fun b -> b <> block) set in
    let updated = block :: without in
    let updated =
      if List.length updated > t.assoc then
        List.filteri (fun i _ -> i < t.assoc) updated
      else updated
    in
    t.sets.(index) <- updated;
    hit
end

let matches_reference_model =
  QCheck.Test.make ~name:"cache agrees with a naive LRU reference model"
    ~count:30
    QCheck.(list_of_size (Gen.int_range 50 400) (int_bound 4095))
    (fun addresses ->
      let cache = Cache.create small_config in
      let reference = Reference.create ~sets:4 ~assoc:2 ~block_bits:6 in
      List.for_all
        (fun addr ->
          let hit_model =
            Cache.access cache ~addr ~write:false
            = (Cache.default_timing).hit_latency
          in
          let hit_reference = Reference.access reference addr in
          hit_model = hit_reference)
        addresses)

let suite =
  [ ("cache:behaviour",
     [ Alcotest.test_case "perfect hits" `Quick test_perfect_always_hits;
       Alcotest.test_case "miss then hit" `Quick test_miss_then_hit;
       Alcotest.test_case "custom timing" `Quick test_custom_timing;
       Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
       Alcotest.test_case "probe purity" `Quick test_probe_is_pure;
       Alcotest.test_case "capacity fits" `Quick test_capacity_fits;
       Alcotest.test_case "thrashing" `Quick test_thrash_misses;
       Alcotest.test_case "validation" `Quick test_validation;
       Alcotest.test_case "write accounting" `Quick
         test_write_accesses_counted;
       Alcotest.test_case "reset stats" `Quick test_reset_stats ]);
    ("cache:properties",
     [ QCheck_alcotest.to_alcotest matches_reference_model ]) ]
