(* Tests for the trace generator (sim-bpred analog) and the statistical
   synthesizer. *)

module Generator = Resim_tracegen.Generator
module Synthetic = Resim_tracegen.Synthetic
module Record = Resim_trace.Record

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* A loop whose exit is unpredictable enough to guarantee at least one
   misprediction under the real predictor. *)
let branchy_program =
  Resim_isa.Asm.(
    assemble
      [ li t0 0;
        li t1 7919;        (* LCG-ish state *)
        li s1 400;
        label "loop";
        li t3 1103515245;
        mul t1 t1 t3;
        addi t1 t1 12345;
        li t3 0x7fffffff;
        and_ t1 t1 t3;
        li t3 16;
        srl t2 t1 t3;
        andi t2 t2 1;
        beq t2 Resim_isa.Reg.zero "skip";
        addi t4 t4 1;
        label "skip";
        addi t0 t0 1;
        blt t0 s1 "loop";
        halt ])

let straight_program =
  Resim_isa.Asm.(
    assemble
      [ li t0 1; addi t0 t0 1; addi t0 t0 2; addi t0 t0 3; halt ])

let test_counts_are_consistent () =
  let result = Generator.run branchy_program in
  check int "records = correct + wrong"
    (result.correct_path + result.wrong_path)
    (Array.length result.records);
  check bool "program completed" true result.executed_to_completion

let test_no_wrong_path_with_perfect_predictor () =
  let config =
    { Generator.default_config with
      predictor = Resim_bpred.Predictor.perfect_config }
  in
  let result = Generator.run ~config branchy_program in
  check int "no tagged records" 0 result.wrong_path;
  check int "no mispredictions" 0 result.mispredicted_branches

let test_wrong_path_structure () =
  (* Every tagged run must directly follow an untagged conditional
     branch record. *)
  let result = Generator.run branchy_program in
  check bool "some mispredictions for this loop" true
    (result.mispredicted_branches > 0);
  let records = result.records in
  Array.iteri
    (fun i (record : Record.t) ->
      if record.wrong_path && (i = 0 || not records.(i - 1).Record.wrong_path)
      then begin
        if i = 0 then Alcotest.fail "trace begins with a tagged record";
        match records.(i - 1).Record.payload with
        | Record.Branch { kind = Resim_isa.Opcode.Cond; _ } -> ()
        | Record.Branch _ | Record.Memory _ | Record.Other _ ->
            Alcotest.failf
              "tagged block at %d not preceded by a conditional branch" i
      end)
    records

let test_wrong_path_block_length_bounded () =
  let config = { Generator.default_config with wrong_path_limit = 5 } in
  let result = Generator.run ~config branchy_program in
  let current = ref 0 in
  Array.iter
    (fun (record : Record.t) ->
      if record.wrong_path then begin
        incr current;
        if !current > 5 then Alcotest.fail "wrong-path block exceeds limit"
      end
      else current := 0)
    result.records

let test_machine_state_unpolluted_by_speculation () =
  (* The generator speculates down wrong paths and rolls back; the
     retired-instruction count must match a plain interpreter run. *)
  let result = Generator.run branchy_program in
  let machine = Resim_isa.Machine.create ~program:branchy_program () in
  let plain = Resim_isa.Interpreter.run machine branchy_program in
  check int "correct path length = plain execution" plain
    result.correct_path

let test_generator_deterministic () =
  let a = Generator.run branchy_program in
  let b = Generator.run branchy_program in
  check int "same record count" (Array.length a.records)
    (Array.length b.records);
  check bool "identical records" true
    (Array.for_all2 Record.equal a.records b.records)

let test_budget_respected () =
  let config = { Generator.default_config with max_instructions = 100 } in
  let result = Generator.run ~config branchy_program in
  check bool "budget enforced" true (result.correct_path <= 100);
  check bool "did not complete" true (not result.executed_to_completion)

let test_straight_line_has_no_branch_records () =
  let result = Generator.run straight_program in
  let summary = Resim_trace.Summary.of_records result.records in
  check int "no branches" 0 summary.branches;
  check int "four instructions" 4 result.correct_path

(* --- synthetic ---------------------------------------------------------- *)

let test_synthetic_counts () =
  let profile = Synthetic.balanced ~name:"t" ~instructions:5000 in
  let records = Synthetic.generate ~seed:7 profile in
  let untagged =
    Array.fold_left
      (fun acc (r : Record.t) -> if r.wrong_path then acc else acc + 1)
      0 records
  in
  check int "correct-path length honoured" 5000 untagged

let test_synthetic_deterministic () =
  let profile = Synthetic.balanced ~name:"t" ~instructions:1000 in
  let a = Synthetic.generate ~seed:3 profile in
  let b = Synthetic.generate ~seed:3 profile in
  check bool "same seed, same trace" true (Array.for_all2 Record.equal a b);
  let c = Synthetic.generate ~seed:4 profile in
  let same_trace =
    Array.length a = Array.length c && Array.for_all2 Record.equal a c
  in
  check bool "different seed differs" true (not same_trace)

let test_synthetic_respects_mix () =
  let profile =
    { (Synthetic.balanced ~name:"t" ~instructions:20000) with
      loads = 0.3;
      stores = 0.05;
      branches = 0.1;
      mispredict_rate = 0.0 }
  in
  let records = Synthetic.generate ~seed:11 profile in
  let summary = Resim_trace.Summary.of_records records in
  let frac n = float_of_int n /. float_of_int summary.total in
  check bool "load fraction (±2%)" true
    (abs_float (frac summary.loads -. 0.3) < 0.02);
  check bool "store fraction (±2%)" true
    (abs_float (frac summary.stores -. 0.05) < 0.02);
  check int "no wrong path when rate 0" 0 summary.wrong_path

let test_synthetic_addresses_within_working_set () =
  let profile =
    { (Synthetic.balanced ~name:"t" ~instructions:3000) with
      working_set_bytes = 4096 }
  in
  let records = Synthetic.generate ~seed:13 profile in
  Array.iter
    (fun (record : Record.t) ->
      match record.payload with
      | Record.Memory { address; _ } ->
          if address < 0 || address >= 4096 then
            Alcotest.failf "address %#x outside the working set" address
      | Record.Branch _ | Record.Other _ -> ())
    records

let engine_accepts_synthetic =
  QCheck.Test.make
    ~name:"generated synthetic traces always simulate to completion"
    ~count:20
    QCheck.(pair (int_bound 1000) (int_bound 100))
    (fun (seed, mp) ->
      let profile =
        { (Synthetic.balanced ~name:"prop" ~instructions:800) with
          mispredict_rate = float_of_int mp /. 500.0 }
      in
      let records = Synthetic.generate ~seed profile in
      let stats = Resim_core.Engine.simulate records in
      Int64.compare (Resim_core.Stats.get Resim_core.Stats.committed stats) 0L
      > 0)

let suite =
  [ ("tracegen:generator",
     [ Alcotest.test_case "counts" `Quick test_counts_are_consistent;
       Alcotest.test_case "perfect predictor" `Quick
         test_no_wrong_path_with_perfect_predictor;
       Alcotest.test_case "wrong-path structure" `Quick
         test_wrong_path_structure;
       Alcotest.test_case "block length bound" `Quick
         test_wrong_path_block_length_bounded;
       Alcotest.test_case "rollback purity" `Quick
         test_machine_state_unpolluted_by_speculation;
       Alcotest.test_case "determinism" `Quick test_generator_deterministic;
       Alcotest.test_case "instruction budget" `Quick test_budget_respected;
       Alcotest.test_case "straight line" `Quick
         test_straight_line_has_no_branch_records ]);
    ("tracegen:synthetic",
     [ Alcotest.test_case "counts" `Quick test_synthetic_counts;
       Alcotest.test_case "determinism" `Quick test_synthetic_deterministic;
       Alcotest.test_case "mix" `Quick test_synthetic_respects_mix;
       Alcotest.test_case "working set" `Quick
         test_synthetic_addresses_within_working_set;
       QCheck_alcotest.to_alcotest engine_accepts_synthetic ]) ]
