(* Tests for the report/bench layer: published constants and the shapes
   of the regenerated tables (small-scale where simulation is needed). *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let test_paper_constants () =
  check int "five table-1 rows" 5 (List.length Resim_reports.Paper_data.table1);
  check int "eight table-2 rows" 8 (List.length Resim_reports.Paper_data.table2);
  check int "five table-3 rows" 5 (List.length Resim_reports.Paper_data.table3);
  check int "twelve table-4 rows" 12
    (List.length Resim_reports.Paper_data.table4);
  (* Table 4 percentages sum to 100 per column. *)
  let sum f =
    List.fold_left
      (fun acc (row : Resim_reports.Paper_data.table4_row) -> acc +. f row)
      0.0 Resim_reports.Paper_data.table4
  in
  check bool "slice pct sums to 100" true
    (abs_float (sum (fun r -> r.slice_pct) -. 100.0) < 0.01);
  check bool "lut pct sums to 100" true
    (abs_float (sum (fun r -> r.lut_pct) -. 100.0) < 0.01);
  check bool "bram pct sums to 100" true
    (abs_float (sum (fun r -> r.bram_pct) -. 100.0) < 0.01)

let test_paper_average_consistency () =
  (* The published per-benchmark values average to the published
     averages (to rounding), a sanity check on our transcription. *)
  let rows = Resim_reports.Paper_data.table1 in
  let mean f =
    List.fold_left (fun acc r -> acc +. f r) 0.0 rows
    /. float_of_int (List.length rows)
  in
  let avg = Resim_reports.Paper_data.table1_average in
  check bool "left v4 average" true
    (abs_float (mean (fun (r : Resim_reports.Paper_data.table1_row) ->
         r.left_v4) -. avg.left_v4) < 0.01);
  check bool "left v5 average" true
    (abs_float (mean (fun r -> r.left_v5) -. avg.left_v5) < 0.01)

let test_table4_report_shape () =
  let report = Resim_reports.Table4.report () in
  check int "twelve structures" 12 (List.length report.per_structure);
  let rendered =
    Format.asprintf "%t" (fun ppf -> Resim_reports.Table4.print ppf)
  in
  check bool "prints totals" true
    (String.length rendered > 200)

let test_figures_render () =
  let rendered =
    Format.asprintf "%t" (fun ppf -> Resim_reports.Figures.print_all ppf)
  in
  check bool "substantial output" true (String.length rendered > 500)

let test_runner_memoisation () =
  Resim_reports.Runner.clear_cache ();
  let workload = Resim_workloads.Workload.find "gzip" in
  let config = Resim_core.Config.reference in
  let a =
    Resim_reports.Runner.run_kernel ~key:"test" ~config
      ~scale:(Resim_reports.Runner.Exact 512) workload
  in
  let b =
    Resim_reports.Runner.run_kernel ~key:"test" ~config
      ~scale:(Resim_reports.Runner.Exact 512) workload
  in
  check bool "memoised (physically equal)" true (a == b);
  Resim_reports.Runner.clear_cache ()

let test_csv_export () =
  (* Table 4 is model-only, so its CSV is cheap to regenerate here. *)
  let path = Filename.temp_file "resim_table4" ".csv" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Resim_reports.Csv_export.write_table4 path;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      check int "header + 12 structures" 13 (List.length !lines);
      let header = List.nth (List.rev !lines) 0 in
      check bool "header columns" true
        (header = "structure,slices,luts,brams,slice_pct,slice_pct_paper"))

let suite =
  [ ("reports",
     [ Alcotest.test_case "paper constants" `Quick test_paper_constants;
       Alcotest.test_case "paper averages" `Quick
         test_paper_average_consistency;
       Alcotest.test_case "table 4 shape" `Quick test_table4_report_shape;
       Alcotest.test_case "figures render" `Quick test_figures_render;
       Alcotest.test_case "runner memoisation" `Quick
         test_runner_memoisation;
       Alcotest.test_case "csv export" `Quick test_csv_export ]) ]
