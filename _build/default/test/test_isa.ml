(* Tests for the PISA-like ISA: registers, opcodes, assembler, machine
   state with speculative rollback, and the functional interpreter. *)

open Resim_isa

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* --- registers ----------------------------------------------------- *)

let test_reg_bounds () =
  check int "r0" 0 (Reg.to_int Reg.zero);
  check int "r31 is ra" 31 (Reg.to_int Reg.ra);
  check int "r29 is sp" 29 (Reg.to_int Reg.sp);
  check int "count" 32 Reg.count;
  Alcotest.check_raises "negative" (Invalid_argument "Reg.of_int: -1 out of range")
    (fun () -> ignore (Reg.of_int (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Reg.of_int: 32 out of range")
    (fun () -> ignore (Reg.of_int 32))

let test_reg_equal () =
  check bool "equal" true (Reg.equal (Reg.r 5) (Reg.r 5));
  check bool "not equal" false (Reg.equal (Reg.r 5) (Reg.r 6));
  check int "compare" 0 (Reg.compare (Reg.r 7) (Reg.r 7))

(* --- opcodes -------------------------------------------------------- *)

let test_opcode_classes () =
  let open Opcode in
  check bool "add is alu" true (op_class Add = Int_alu);
  check bool "mul is mult" true (op_class Mul = Int_mult);
  check bool "div is div" true (op_class Div = Int_div);
  check bool "rem is div" true (op_class Rem = Int_div);
  check bool "lw is load" true (op_class Lw = Load);
  check bool "lb is load" true (op_class Lb = Load);
  check bool "sw is store" true (op_class Sw = Store);
  check bool "beq is ctrl" true (op_class Beq = Ctrl);
  check bool "jal is ctrl" true (op_class Jal = Ctrl)

let test_opcode_branch_kinds () =
  let open Opcode in
  check bool "beq cond" true (branch_kind Beq = Some Cond);
  check bool "j jump" true (branch_kind J = Some Jump);
  check bool "jal call" true (branch_kind Jal = Some Call);
  check bool "jr ret" true (branch_kind Jr = Some Ret);
  check bool "jalr indirect" true (branch_kind Jalr = Some Indirect);
  check bool "add none" true (branch_kind Add = None);
  check bool "lw none" true (branch_kind Lw = None)

let test_opcode_predicates () =
  List.iter
    (fun op ->
      let by_class =
        match Opcode.op_class op with
        | Opcode.Load | Opcode.Store -> true
        | Opcode.Int_alu | Opcode.Int_mult | Opcode.Int_div | Opcode.Ctrl ->
            false
      in
      check bool
        (Printf.sprintf "is_memory %s consistent" (Opcode.mnemonic op))
        by_class (Opcode.is_memory op))
    Opcode.all;
  List.iter
    (fun op ->
      check bool
        (Printf.sprintf "is_control %s consistent" (Opcode.mnemonic op))
        (Opcode.op_class op = Opcode.Ctrl)
        (Opcode.is_control op))
    Opcode.all

let test_opcode_mnemonics_distinct () =
  let mnemonics = List.map Opcode.mnemonic Opcode.all in
  let distinct = List.sort_uniq String.compare mnemonics in
  check int "all mnemonics distinct" (List.length mnemonics)
    (List.length distinct)

(* --- instructions --------------------------------------------------- *)

let test_instruction_sources () =
  let instr =
    Instruction.make ~dest:Reg.zero ~src1:(Reg.r 3) ~src2:Reg.zero Opcode.Add
  in
  check int "r0 sources dropped" 1 (List.length (Instruction.sources instr));
  check bool "r0 dest dropped" true (Instruction.destination instr = None);
  let real = Instruction.make ~dest:(Reg.r 4) Opcode.Addi in
  check bool "real dest kept" true
    (Instruction.destination real = Some (Reg.r 4))

let test_instruction_addresses () =
  check int "8 bytes per instruction" 8 Instruction.bytes_per_instruction;
  check int "byte address" 80 (Instruction.byte_address 10)

(* --- assembler ------------------------------------------------------ *)

let test_asm_labels () =
  let program =
    Asm.(assemble [ label "top"; nop; j "top"; label "end"; halt ])
  in
  check int "three instructions" 3 (Program.length program);
  check int "top resolves" 0 (Program.resolve program "top");
  check int "end resolves" 2 (Program.resolve program "end");
  match Program.fetch program 1 with
  | Some { op = Opcode.J; imm; _ } -> check int "jump target" 0 imm
  | Some _ | None -> Alcotest.fail "expected a jump at index 1"

let test_asm_forward_reference () =
  let program = Asm.(assemble [ j "later"; nop; label "later"; halt ]) in
  match Program.fetch program 0 with
  | Some { imm; _ } -> check int "forward target" 2 imm
  | None -> Alcotest.fail "missing instruction"

let test_asm_duplicate_label () =
  Alcotest.check_raises "duplicate" (Asm.Duplicate_label "x") (fun () ->
      ignore Asm.(assemble [ label "x"; nop; label "x"; halt ]))

let test_asm_unknown_label () =
  Alcotest.check_raises "unknown" (Asm.Unknown_label "nowhere") (fun () ->
      ignore Asm.(assemble [ j "nowhere" ]))

let test_asm_entry () =
  let program =
    Asm.(assemble ~entry:"main" [ halt; label "main"; nop; halt ])
  in
  check int "entry at main" 1 program.Program.entry

let test_asm_comments_ignored () =
  let program = Asm.(assemble [ comment "hello"; nop; comment "x"; halt ]) in
  check int "comments emit nothing" 2 (Program.length program)

(* --- machine -------------------------------------------------------- *)

let test_machine_registers () =
  let m = Machine.create () in
  check int "initial zero" 0 (Machine.read_reg m (Reg.r 5));
  Machine.write_reg m (Reg.r 5) 42;
  check int "write/read" 42 (Machine.read_reg m (Reg.r 5));
  Machine.write_reg m Reg.zero 99;
  check int "r0 stays zero" 0 (Machine.read_reg m Reg.zero);
  check int "sp initialised" Machine.default_stack_base
    (Machine.read_reg m Reg.sp)

let test_machine_memory () =
  let m = Machine.create () in
  check int "unwritten word is 0" 0 (Machine.read_word m 0x100);
  Machine.write_word m 0x100 7;
  check int "word write" 7 (Machine.read_word m 0x100);
  check int "word aligned access" 7 (Machine.read_word m 0x102);
  Machine.write_byte m 0x200 0x1ff;
  check int "byte masked" 0xff (Machine.read_byte m 0x200)

let test_machine_program_load () =
  let program = Program.make ~data:[ (0x40, 11); (0x44, 22) ] [| Instruction.halt |] in
  let m = Machine.create ~program () in
  check int "data word 1" 11 (Machine.read_word m 0x40);
  check int "data word 2" 22 (Machine.read_word m 0x44)

let test_machine_rollback () =
  let m = Machine.create () in
  Machine.write_reg m (Reg.r 1) 10;
  Machine.write_word m 0x10 5;
  let cp = Machine.checkpoint m in
  Machine.write_reg m (Reg.r 1) 20;
  Machine.write_reg m (Reg.r 2) 30;
  Machine.write_word m 0x10 6;
  Machine.write_word m 0x20 7;
  Machine.write_byte m 0x30 8;
  Machine.set_pc m 99;
  Machine.set_halted m true;
  Machine.incr_retired m;
  Machine.rollback m cp;
  check int "reg restored" 10 (Machine.read_reg m (Reg.r 1));
  check int "new reg reverted" 0 (Machine.read_reg m (Reg.r 2));
  check int "word restored" 5 (Machine.read_word m 0x10);
  check int "new word removed" 0 (Machine.read_word m 0x20);
  check int "byte removed" 0 (Machine.read_byte m 0x30);
  check int "pc restored" 0 (Machine.pc m);
  check bool "halt restored" false (Machine.halted m);
  check bool "retired restored" true
    (Int64.equal (Machine.instructions_retired m) 0L)

let test_machine_discard () =
  let m = Machine.create () in
  let cp = Machine.checkpoint m in
  Machine.write_reg m (Reg.r 1) 77;
  Machine.discard m cp;
  check int "discard keeps changes" 77 (Machine.read_reg m (Reg.r 1))

let test_machine_nested_checkpoints () =
  let m = Machine.create () in
  Machine.write_reg m (Reg.r 1) 1;
  let outer = Machine.checkpoint m in
  Machine.write_reg m (Reg.r 1) 2;
  let inner = Machine.checkpoint m in
  Machine.write_reg m (Reg.r 1) 3;
  Machine.rollback m inner;
  check int "inner rollback" 2 (Machine.read_reg m (Reg.r 1));
  Machine.rollback m outer;
  check int "outer rollback" 1 (Machine.read_reg m (Reg.r 1))

let test_machine_discard_inner_rollback_outer () =
  let m = Machine.create () in
  let outer = Machine.checkpoint m in
  Machine.write_reg m (Reg.r 1) 5;
  let inner = Machine.checkpoint m in
  Machine.write_reg m (Reg.r 1) 6;
  Machine.discard m inner;
  Machine.rollback m outer;
  check int "outer rollback undoes discarded inner work" 0
    (Machine.read_reg m (Reg.r 1))

(* --- interpreter ---------------------------------------------------- *)

(* Run [stmts] to completion and return the machine. *)
let run_program stmts =
  let program = Asm.assemble stmts in
  let m = Machine.create ~program () in
  ignore (Interpreter.run m program);
  m

let reg m r = Machine.read_reg m r

let test_alu_operations () =
  let open Asm in
  let m =
    run_program
      [ li t0 12; li t1 5;
        add t2 t0 t1;
        sub t3 t0 t1;
        and_ t4 t0 t1;
        or_ t5 t0 t1;
        xor t6 t0 t1;
        slt t7 t1 t0;
        halt ]
  in
  check int "add" 17 (reg m t2);
  check int "sub" 7 (reg m t3);
  check int "and" 4 (reg m t4);
  check int "or" 13 (reg m t5);
  check int "xor" 9 (reg m t6);
  check int "slt" 1 (reg m t7)

let test_shifts () =
  let open Asm in
  let m =
    run_program
      [ li t0 0b1100; li t1 2;
        sll t2 t0 t1;
        srl t3 t0 t1;
        li t4 (-8);
        sra t5 t4 t1;
        halt ]
  in
  check int "sll" 0b110000 (reg m t2);
  check int "srl" 0b11 (reg m t3);
  check int "sra" (-2) (reg m t5)

let test_immediates () =
  let open Asm in
  let m =
    run_program
      [ li t0 10;
        addi t1 t0 (-3);
        andi t2 t0 6;
        ori t3 t0 5;
        xori t4 t0 3;
        slti t5 t0 11;
        lui t6 2;
        halt ]
  in
  check int "addi" 7 (reg m t1);
  check int "andi" 2 (reg m t2);
  check int "ori" 15 (reg m t3);
  check int "xori" 9 (reg m t4);
  check int "slti" 1 (reg m t5);
  check int "lui" (2 lsl 16) (reg m t6)

let test_shift_amount_masked () =
  (* Shift amounts use the low five bits of the operand, as on MIPS. *)
  let open Asm in
  let m =
    run_program
      [ li t0 1; li t1 33; sll t2 t0 t1; li t1 32; sll t3 t0 t1; halt ]
  in
  check int "shift by 33 acts as 1" 2 (reg m t2);
  check int "shift by 32 acts as 0" 1 (reg m t3)

let test_mul_div_rem () =
  let open Asm in
  let m =
    run_program
      [ li t0 7; li t1 3;
        mul t2 t0 t1;
        div t3 t0 t1;
        rem t4 t0 t1;
        div t5 t0 Reg.zero;
        rem t6 t0 Reg.zero;
        halt ]
  in
  check int "mul" 21 (reg m t2);
  check int "div" 2 (reg m t3);
  check int "rem" 1 (reg m t4);
  check int "div by zero is 0" 0 (reg m t5);
  check int "rem by zero is 0" 0 (reg m t6)

let test_memory_ops () =
  let open Asm in
  let m =
    run_program
      [ li t0 0x500;
        li t1 1234;
        sw t1 8 t0;
        lw t2 8 t0;
        li t3 0xab;
        sb t3 1 t0;
        lb t4 1 t0;
        halt ]
  in
  check int "sw/lw" 1234 (reg m t2);
  check int "sb/lb" 0xab (reg m t4)

let test_branches () =
  let open Asm in
  let m =
    run_program
      [ li t0 1; li t1 1; li t7 0;
        beq t0 t1 "eq_taken";
        li t7 100;
        label "eq_taken";
        bne t0 t1 "bad";
        blt t0 t1 "bad";
        bge t0 t1 "ge_taken";
        li t7 100;
        label "ge_taken";
        halt;
        label "bad";
        li t7 999;
        halt ]
  in
  check int "branch semantics" 0 (reg m t7)

let test_call_return () =
  let open Asm in
  let m =
    run_program
      [ j "main";
        label "double";
        add v0 a0 a0;
        jr Reg.ra;
        label "main";
        li a0 21;
        jal "double";
        halt ]
  in
  check int "call/return result" 42 (reg m v0)

let test_jalr () =
  let open Asm in
  let program =
    Asm.assemble
      [ li t0 1;            (* address of... *)
        jalr t1 t0;         (* indirect call to instruction 1: itself? *)
        halt ]
  in
  (* jalr at index 1 jumps to index 1 (t0 = 1): an infinite self-loop;
     just take a single step and inspect the observation. *)
  let m = Machine.create ~program () in
  ignore (Interpreter.step m program);
  (match Interpreter.step m program with
  | Interpreter.Stepped { control = Some { kind; taken; target }; _ } ->
      check bool "jalr indirect" true (kind = Opcode.Indirect);
      check bool "jalr taken" true taken;
      check int "jalr target" 1 target
  | Interpreter.Stepped { control = None; _ } | Interpreter.Halted_ ->
      Alcotest.fail "expected a control observation");
  check int "link register" 2 (Machine.read_reg m Asm.t1)

let test_jr_ret_kind () =
  let open Asm in
  let program =
    assemble [ li Reg.ra 2; jr Reg.ra; halt; jr t0 ]
  in
  let m = Machine.create ~program () in
  ignore (Interpreter.step m program);
  (match Interpreter.step m program with
  | Interpreter.Stepped { control = Some { kind; _ }; _ } ->
      check bool "jr ra is Ret" true (kind = Opcode.Ret)
  | _ -> Alcotest.fail "expected control");
  (* jr through a non-ra register is Indirect *)
  let program2 = assemble [ li t0 1; jr t0 ] in
  let m2 = Machine.create ~program:program2 () in
  ignore (Interpreter.step m2 program2);
  match Interpreter.step m2 program2 with
  | Interpreter.Stepped { control = Some { kind; _ }; _ } ->
      check bool "jr other is Indirect" true (kind = Opcode.Indirect)
  | _ -> Alcotest.fail "expected control"

let test_observation_fields () =
  let open Asm in
  let program = assemble [ li t0 0x600; lw t1 4 t0; halt ] in
  let m = Machine.create ~program () in
  ignore (Interpreter.step m program);
  match Interpreter.step m program with
  | Interpreter.Stepped obs ->
      check int "index" 1 obs.index;
      check int "next" 2 obs.next_index;
      check bool "effective address" true
        (obs.effective_address = Some 0x604)
  | Interpreter.Halted_ -> Alcotest.fail "expected a step"

let test_run_off_end_halts () =
  let program = Asm.(assemble [ nop; nop ]) in
  let m = Machine.create ~program () in
  let executed = Interpreter.run m program in
  check int "two instructions" 2 executed;
  check bool "halted" true (Machine.halted m)

let test_max_steps () =
  let program = Asm.(assemble [ label "spin"; j "spin" ]) in
  let m = Machine.create ~program () in
  let executed = Interpreter.run ~max_steps:50 m program in
  check int "bounded" 50 executed;
  check bool "not halted" false (Machine.halted m)

(* --- speculative execution property --------------------------------- *)

(* Rollback must restore the machine exactly: running to step n then
   speculatively executing k more steps and rolling back equals running
   to step n directly. *)
let rollback_equivalence =
  QCheck.Test.make ~name:"checkpoint/rollback restores machine state"
    ~count:50
    QCheck.(pair (int_bound 30) (int_bound 30))
    (fun (n, k) ->
      let program =
        Asm.(
          assemble
            [ li t0 0; li t1 0; li s0 0x800;
              label "loop";
              addi t0 t0 3;
              andi t2 t0 7;
              sll t3 t0 t2;
              add t1 t1 t3;
              sw t1 0 s0;
              addi s0 s0 4;
              lw t4 (-4) s0;
              bne t4 Reg.zero "loop";
              halt ])
      in
      let straight = Machine.create ~program () in
      for _ = 1 to n do ignore (Interpreter.step straight program) done;
      let speculated = Machine.create ~program () in
      for _ = 1 to n do ignore (Interpreter.step speculated program) done;
      let cp = Machine.checkpoint speculated in
      for _ = 1 to k do ignore (Interpreter.step speculated program) done;
      Machine.rollback speculated cp;
      let regs_equal =
        List.for_all
          (fun i ->
            Machine.read_reg straight (Reg.r i)
            = Machine.read_reg speculated (Reg.r i))
          (List.init 32 Fun.id)
      in
      regs_equal
      && Machine.pc straight = Machine.pc speculated
      && Machine.halted straight = Machine.halted speculated
      && Int64.equal
           (Machine.instructions_retired straight)
           (Machine.instructions_retired speculated))

let interpreter_never_crashes =
  QCheck.Test.make ~name:"random ALU programs run safely" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 40) (int_bound 1000))
    (fun seeds ->
      let stmts =
        List.concat_map
          (fun seed ->
            let r i = Reg.r (1 + ((seed + i) mod 31)) in
            Asm.
              [ li (r 0) seed;
                add (r 1) (r 0) (r 2);
                mul (r 3) (r 1) (r 0);
                xor (r 2) (r 3) (r 1) ])
          seeds
        @ [ Asm.halt ]
      in
      let program = Asm.assemble stmts in
      let m = Machine.create ~program () in
      let executed = Interpreter.run m program in
      executed = (4 * List.length seeds))

let suite =
  [ ("isa:reg",
     [ Alcotest.test_case "bounds" `Quick test_reg_bounds;
       Alcotest.test_case "equality" `Quick test_reg_equal ]);
    ("isa:opcode",
     [ Alcotest.test_case "classes" `Quick test_opcode_classes;
       Alcotest.test_case "branch kinds" `Quick test_opcode_branch_kinds;
       Alcotest.test_case "predicates" `Quick test_opcode_predicates;
       Alcotest.test_case "mnemonics distinct" `Quick
         test_opcode_mnemonics_distinct ]);
    ("isa:instruction",
     [ Alcotest.test_case "sources/dest" `Quick test_instruction_sources;
       Alcotest.test_case "byte addresses" `Quick test_instruction_addresses
     ]);
    ("isa:asm",
     [ Alcotest.test_case "labels" `Quick test_asm_labels;
       Alcotest.test_case "forward reference" `Quick
         test_asm_forward_reference;
       Alcotest.test_case "duplicate label" `Quick test_asm_duplicate_label;
       Alcotest.test_case "unknown label" `Quick test_asm_unknown_label;
       Alcotest.test_case "entry point" `Quick test_asm_entry;
       Alcotest.test_case "comments" `Quick test_asm_comments_ignored ]);
    ("isa:machine",
     [ Alcotest.test_case "registers" `Quick test_machine_registers;
       Alcotest.test_case "memory" `Quick test_machine_memory;
       Alcotest.test_case "program data" `Quick test_machine_program_load;
       Alcotest.test_case "rollback" `Quick test_machine_rollback;
       Alcotest.test_case "discard" `Quick test_machine_discard;
       Alcotest.test_case "nested checkpoints" `Quick
         test_machine_nested_checkpoints;
       Alcotest.test_case "discard inner, rollback outer" `Quick
         test_machine_discard_inner_rollback_outer ]);
    ("isa:interpreter",
     [ Alcotest.test_case "alu" `Quick test_alu_operations;
       Alcotest.test_case "shifts" `Quick test_shifts;
       Alcotest.test_case "immediates" `Quick test_immediates;
       Alcotest.test_case "shift masking" `Quick test_shift_amount_masked;
       Alcotest.test_case "mul/div/rem" `Quick test_mul_div_rem;
       Alcotest.test_case "memory" `Quick test_memory_ops;
       Alcotest.test_case "branches" `Quick test_branches;
       Alcotest.test_case "call/return" `Quick test_call_return;
       Alcotest.test_case "jalr" `Quick test_jalr;
       Alcotest.test_case "jr kinds" `Quick test_jr_ret_kind;
       Alcotest.test_case "observations" `Quick test_observation_fields;
       Alcotest.test_case "run off end" `Quick test_run_off_end_halts;
       Alcotest.test_case "max steps" `Quick test_max_steps ]);
    ("isa:properties",
     [ QCheck_alcotest.to_alcotest rollback_equivalence;
       QCheck_alcotest.to_alcotest interpreter_never_crashes ]) ]
