(* Benchmark harness: regenerates every table (1-4) and figure (2-4) of
   the paper, runs the ablation studies, and measures host throughput of
   the trace-driven engine against the execution-driven baseline with
   Bechamel.

   Flags:
     --json PATH   also write the engine host-throughput grid (host MIPS
                   per kernel x config x scheduler) as JSON to PATH —
                   the perf trajectory tracked across PRs
                   (BENCH_engine.json at the repo root)
     --quick       smoke mode: only the (shrunken) host-throughput grid,
                   skipping tables, Bechamel and the sweep comparison *)

open Bechamel

let section title =
  Format.printf "@.%s@.%s@.@." title (String.make (String.length title) '=')

let reports () =
  section "Figures 2-4: ReSim internal pipeline organizations";
  Resim_reports.Figures.print_all Format.std_formatter;
  Format.printf "@.";
  section "Table 1: simulation performance";
  Resim_reports.Table1.print Format.std_formatter;
  Format.printf "@.";
  section "Table 2: simulator comparison";
  Resim_reports.Table2.print Format.std_formatter;
  Format.printf "@.";
  section "Table 3: throughput statistics and trace bandwidth";
  Resim_reports.Table3.print Format.std_formatter;
  Format.printf "@.";
  section "Table 4: area cost";
  Resim_reports.Table4.print Format.std_formatter;
  Format.printf "@.";
  section "Ablations";
  Resim_reports.Ablations.print_all Format.std_formatter;
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Host-side microbenchmarks.                                          *)

type host_bench = {
  name : string;
  test : Test.t;
  work_instructions : float;
      (** simulated instructions one run of the test covers, for host
          MIPS; 0 when not meaningful *)
}

let host_benches () =
  let gzip = Resim_workloads.Workload.find "gzip" in
  let program = Resim_workloads.Workload.program_of gzip ~scale:8192 () in
  let generated = Resim_tracegen.Generator.run program in
  let records = generated.records in
  let correct = float_of_int generated.correct_path in
  let engine_test =
    Test.make ~name:"resim-engine (trace-driven)"
      (Staged.stage (fun () ->
           ignore (Resim_core.Engine.simulate records)))
  in
  let tracegen_test =
    Test.make ~name:"trace generation (sim-bpred analog)"
      (Staged.stage (fun () ->
           ignore (Resim_tracegen.Generator.records program)))
  in
  let fused_test =
    Test.make ~name:"execution-driven baseline (fused)"
      (Staged.stage (fun () ->
           ignore (Resim_baseline.Sim_outorder.run program)))
  in
  let functional_test =
    Test.make ~name:"functional only (sim-fast analog)"
      (Staged.stage (fun () ->
           ignore (Resim_baseline.Sim_outorder.functional_only program)))
  in
  let in_order_test =
    Test.make ~name:"in-order 5-stage model"
      (Staged.stage (fun () ->
           ignore (Resim_baseline.In_order.simulate records)))
  in
  let codec_test =
    Test.make ~name:"trace codec encode (fixed)"
      (Staged.stage (fun () -> ignore (Resim_trace.Codec.encode records)))
  in
  [ { name = "resim-engine (trace-driven)"; test = engine_test;
      work_instructions = correct };
    { name = "trace generation (sim-bpred analog)"; test = tracegen_test;
      work_instructions = correct };
    { name = "execution-driven baseline (fused)"; test = fused_test;
      work_instructions = correct };
    { name = "functional only (sim-fast analog)"; test = functional_test;
      work_instructions = correct };
    { name = "in-order 5-stage model"; test = in_order_test;
      work_instructions = correct };
    { name = "trace codec encode (fixed)"; test = codec_test;
      work_instructions = float_of_int (Array.length records) } ]

let measure_ns_per_run test =
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  Hashtbl.fold
    (fun _name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some (ns :: _) -> ns :: acc
      | Some [] | None -> acc)
    results []

let bechamel_section () =
  section "Host throughput (Bechamel, this machine)";
  Format.printf
    "One run simulates the gzip kernel at scale 8192 (~60k correct-path \
     instructions).@.@.%-38s %14s %12s@." "mode" "ns/run" "host MIPS";
  List.iter
    (fun bench ->
      match measure_ns_per_run bench.test with
      | [ ns ] ->
          let mips =
            if bench.work_instructions > 0.0 && ns > 0.0 then
              bench.work_instructions /. ns *. 1000.0
            else 0.0
          in
          Format.printf "%-38s %14.0f %12.3f@." bench.name ns mips
      | _ -> Format.printf "%-38s %14s %12s@." bench.name "n/a" "n/a")
    (host_benches ());
  Format.printf
    "@.The engine row is the per-timing-run cost in a bulk design-space \
     sweep (trace reused);@.the fused row repeats functional work every \
     run, as execution-driven simulators must.@."

(* ------------------------------------------------------------------ *)
(* Serial vs domain-parallel sweep throughput.                         *)

let sweep_section () =
  section "Sweep throughput: serial vs domain-parallel (this machine)";
  let grid =
    List.map Resim_reports.Runner.job_of_request
      (Resim_reports.Ablations.requests ())
  in
  Format.printf
    "full ablation grid: %d jobs; host recommends %d domain(s)@.@."
    (List.length grid)
    (Resim_sweep.Pool.recommended_jobs ());
  let time f =
    let started = Unix.gettimeofday () in
    let result = f () in
    (result, Unix.gettimeofday () -. started)
  in
  let serial_report, serial_wall =
    time (fun () -> Resim_sweep.Sweep.run ~jobs:1 grid)
  in
  let parallel_report, parallel_wall =
    time (fun () -> Resim_sweep.Sweep.run ~jobs:4 grid)
  in
  let serial = Resim_sweep.Sweep.completed serial_report in
  let parallel = Resim_sweep.Sweep.completed parallel_report in
  let cycles (r : Resim_sweep.Sweep.result) =
    Resim_core.Stats.get Resim_core.Stats.major_cycles r.outcome.stats
  in
  let committed (r : Resim_sweep.Sweep.result) =
    Resim_core.Stats.get Resim_core.Stats.committed r.outcome.stats
  in
  let identical =
    List.for_all2
      (fun (a : Resim_sweep.Sweep.result) (b : Resim_sweep.Sweep.result) ->
        Int64.equal (cycles a) (cycles b)
        && Int64.equal (committed a) (committed b)
        && Array.length a.generated.records
           = Array.length b.generated.records)
      serial parallel
  in
  Format.printf "%-16s %10.2f s@." "serial (-j 1)" serial_wall;
  Format.printf
    "%-16s %10.2f s   speedup %.2fx   results identical: %b@."
    "parallel (-j 4)" parallel_wall
    (if parallel_wall > 0.0 then serial_wall /. parallel_wall else 1.0)
    identical;
  Format.printf
    "@.(speedup tracks physical cores; oversubscribing a smaller host \
     costs domain-scheduling and GC overhead, but results stay identical)@.";
  let counts = Resim_sweep.Sweep.counts parallel_report in
  Format.printf
    "@.per-job outcomes: %d ok, %d failed, %d timed out, %d truncated, \
     %d retried@."
    counts.ok counts.failed counts.timed_out counts.truncated counts.retried;
  counts

(* ------------------------------------------------------------------ *)
(* Engine host-throughput grid (Scan vs Event schedulers).              *)

let scheduler_section ~quick ~json ?sweep_outcomes () =
  section "Engine host throughput: Scan vs Event scheduler";
  let measurements = Resim_reports.Hostbench.measure ~quick () in
  Format.printf "%a@." Resim_reports.Hostbench.pp_table measurements;
  match json with
  | Some path ->
      Resim_reports.Hostbench.write_json ~path ?sweep_outcomes measurements;
      Format.printf "@.wrote %s@." path
  | None -> ()

let () =
  let json = ref None in
  let quick = ref false in
  Arg.parse
    [ ("--json", Arg.String (fun path -> json := Some path),
       "PATH  write the engine host-MIPS grid as JSON to PATH");
      ("--quick", Arg.Set quick,
       "  smoke mode: host-throughput grid only, small inputs") ]
    (fun anon -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" anon)))
    "bench [--quick] [--json PATH]";
  Format.printf "ReSim reproduction benchmark harness (v%s)@."
    Resim_core.Resim.version;
  if !quick then scheduler_section ~quick:true ~json:!json ()
  else begin
    reports ();
    let csvs = Resim_reports.Csv_export.write_all ~dir:"." in
    Format.printf "@.machine-readable tables: %s@."
      (String.concat ", " csvs);
    bechamel_section ();
    (* The sweep runs first so its per-job outcome counts land in the
       JSON the scheduler section writes. *)
    let sweep_outcomes = sweep_section () in
    scheduler_section ~quick:false ~json:!json ~sweep_outcomes ()
  end;
  Format.printf "@.done.@."
