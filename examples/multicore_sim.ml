(* Multi-core simulation — the paper's future-work direction ("it is
   possible to fit multiple ReSim instances in a single FPGA and
   simulate multi-core systems").

   Four ReSim cores, each with its own kernel trace, stepped in lockstep
   by Resim_multicore.System, with the area model answering how many
   instances each device holds and the throughput model giving the
   aggregate simulation speed.

     dune exec examples/multicore_sim.exe *)

module System = Resim_multicore.System

let core_workloads = [ "gzip"; "parser"; "vortex"; "vpr" ]

let () =
  let specs =
    List.map
      (fun name ->
        let workload = Resim_workloads.Workload.find name in
        let program = Resim_workloads.Workload.program_of workload () in
        { System.name;
          feed = System.Records (Resim_tracegen.Generator.records program);
          config = Resim_core.Config.reference })
      core_workloads
  in
  let system = System.create specs in
  (match System.run system with
  | `Finished -> ()
  | `Truncated -> Format.printf "warning: cycle budget exhausted@.");
  Format.printf "%a@." System.pp system;
  Format.printf "aggregate committed: %Ld over %Ld lockstep cycles@.@."
    (System.aggregate_committed system)
    (System.elapsed_cycles system);
  List.iter
    (fun device ->
      let instances =
        Resim_fpga.Area.instances_fitting (System.area system) device
      in
      Format.printf
        "%-10s holds %2d such cores (this system of %d fits: %b); \
         aggregate %.1f MIPS at %g MHz@."
        device.Resim_fpga.Device.name instances
        (System.core_count system)
        (System.fits system device)
        (System.aggregate_mips system ~device)
        device.Resim_fpga.Device.minor_cycle_mhz)
    Resim_fpga.Device.all
